(* See server.mli for the design.  Threading model (systhreads, one
   domain): one accept thread per listener, one session thread per
   connection, ONE writer thread.  Sessions never mutate the engine —
   they read off the atomically-published snapshot — so the store's node
   table has a single writer and many readers, which is the discipline
   that makes the unguarded Hashtbls safe; the telemetry sink has its own
   internal mutex, and the pack read path serializes its shared fd. *)

module Hash = Siri_crypto.Hash
module Kv = Siri_core.Kv
module Generic = Siri_core.Generic
module Multiproof = Siri_core.Multiproof
module Telemetry = Siri_telemetry.Telemetry
module Engine = Siri_forkbase.Engine
module Durable = Siri_wal.Durable
module Sharded = Siri_shard.Sharded
module Shard_proof = Siri_shard.Shard_proof
module Shard_views = Siri_shard.Views
module Fault = Siri_fault.Fault

type addr = [ `Unix of string | `Tcp of int ]

type backend = Plain of Durable.t | Shards of Sharded.t

type config = {
  max_queue : int;
  group_max : int;
  idempotency_cap : int;
  session_max : int;
}

let default_config =
  { max_queue = 256; group_max = 64; idempotency_cap = 4096; session_max = 64 }

(* A queued write batch.  The session thread blocks on [cond] until the
   writer (which always answers every drained batch, including at
   shutdown drain) fills [resp]. *)
type pending = {
  req_id : string;
  branch : string;
  client_message : string;
  ops : Kv.op list;
  deadline : float;  (* absolute gettimeofday; 0. = none *)
  pmu : Mutex.t;
  pcond : Condition.t;
  mutable resp : Proto.response option;
}

(* One published branch snapshot.  Plain backend: the head commit's id,
   index root and version over a single index view.  Sharded backend:
   the composite root stands in for both id and root, the global
   sequence number is the version, and reads route across the per-shard
   views (all immutable — old shard roots stay valid like any other
   version, so the lock-free read discipline is unchanged). *)
type view_ =
  | Mono of Generic.t
  | Multi of Siri_shard.Partition.t * Generic.t array

type snap = { s_id : Hash.t; s_root : Hash.t; s_version : int; view : view_ }

type t = {
  config : config;
  backend : backend;
  tsink : Telemetry.sink;
  snapshot : (string * snap) list Atomic.t;
  ro : bool Atomic.t;
  (* write queue; [running] and [paused] are guarded by [qmu] so the
     writer's exit condition and enqueue's refusal cannot race. *)
  qmu : Mutex.t;
  qcond : Condition.t;
  queue : pending Queue.t;
  mutable running : bool;
  mutable paused : bool;
  (* idempotency: req_id -> cached Committed response, FIFO-capped *)
  seen_mu : Mutex.t;
  seen : (string, Proto.response) Hashtbl.t;
  seen_order : string Queue.t;
  (* sessions registry, guarded by [smu] *)
  smu : Mutex.t;
  sessions : (int, Unix.file_descr) Hashtbl.t;
  mutable session_threads : Thread.t list;
  mutable next_session : int;
  mutable accept_threads : Thread.t list;
  mutable writer : Thread.t option;
  listeners : (addr * Unix.file_descr) list;
  mutable stopped : bool;  (* guarded by [smu]; stop idempotence *)
}

let listening t = List.map fst t.listeners
let sink t = t.tsink
let read_only t = Atomic.get t.ro

(* --- idempotency table ------------------------------------------------- *)

let seen_find t id =
  Mutex.lock t.seen_mu;
  let r = Hashtbl.find_opt t.seen id in
  Mutex.unlock t.seen_mu;
  r

let seen_record t id resp =
  Mutex.lock t.seen_mu;
  if not (Hashtbl.mem t.seen id) then begin
    Hashtbl.replace t.seen id resp;
    Queue.add id t.seen_order;
    while Queue.length t.seen_order > t.config.idempotency_cap do
      Hashtbl.remove t.seen (Queue.pop t.seen_order)
    done
  end;
  Mutex.unlock t.seen_mu

let serve_prefix = "serve:"

let ids_of_message msg =
  (* "serve:id1,id2,…" — the req_id charset excludes ',', so a plain
     split recovers exactly the ids that were folded into the commit. *)
  let p = serve_prefix in
  let pl = String.length p in
  if String.length msg > pl && String.sub msg 0 pl = p then
    String.split_on_char ',' (String.sub msg pl (String.length msg - pl))
    |> List.filter Proto.valid_req_id
  else []

(* Rebuild the dedup table from the commit history so a client retrying
   an unacked commit across a server crash still gets at-most-once.  Oldest
   first so the FIFO cap keeps the newest ids.  Sharded: a group commit
   lands (with its ids in the message) in every shard it touched, so the
   union over shard histories recovers every id; the cached ack carries
   that shard's commit id, which is an honest at-most-once answer even
   though the original ack named the composite. *)
let recover_seen_engine t eng =
  List.iter
    (fun branch ->
      List.rev (Engine.history eng branch)
      |> List.iter (fun (c : Engine.commit) ->
             let ids = ids_of_message c.message in
             let n = List.length ids in
             List.iter
               (fun id ->
                 seen_record t id
                   (Proto.Committed
                      { req_id = id;
                        commit = c.id;
                        version = c.version;
                        group_size = n }))
               ids))
    (Engine.branches eng)

let recover_seen t =
  match t.backend with
  | Plain d -> recover_seen_engine t (Durable.engine d)
  | Shards s ->
      Array.iter
        (fun d -> recover_seen_engine t (Durable.engine d))
        (Sharded.shards s)

(* --- snapshot publication ---------------------------------------------- *)

let snap_of_branch t branch =
  match t.backend with
  | Plain d ->
      let eng = Durable.engine d in
      let head = Engine.head eng branch in
      { s_id = head.id;
        s_root = head.index_root;
        s_version = head.version;
        view = Mono (Engine.index eng branch) }
  | Shards s ->
      let views = Sharded.views s ~branch in
      let composite = Shard_views.composite (Sharded.spec s) views in
      { s_id = composite;
        s_root = composite;
        s_version = Sharded.last_seq s;
        view = Multi (Sharded.spec s, views) }

let backend_branches t =
  match t.backend with
  | Plain d -> Engine.branches (Durable.engine d)
  | Shards s -> Sharded.branches s

let publish_branch t branch =
  let rest = List.remove_assoc branch (Atomic.get t.snapshot) in
  Atomic.set t.snapshot ((branch, snap_of_branch t branch) :: rest)

let publish_all t =
  Atomic.set t.snapshot
    (List.map (fun b -> (b, snap_of_branch t b)) (backend_branches t))

(* --- writer: group commit ---------------------------------------------- *)

let reply p resp =
  Mutex.lock p.pmu;
  p.resp <- Some resp;
  Condition.signal p.pcond;
  Mutex.unlock p.pmu

let err code detail = Proto.Err { code; detail }

let enter_read_only t =
  if not (Atomic.exchange t.ro true) then
    Telemetry.incr t.tsink "server.readonly.enter"

(* Fold one branch's batches into a single engine commit and ack them
   all with the same commit id.  Sharded backend: the fold becomes one
   {!Sharded.commit} — the group's concatenated ops are partitioned per
   shard and the shard commits run concurrently under this (single)
   writer, still one composite publication and one ack per batch. *)
let backend_commit t ~branch ~message ops =
  match t.backend with
  | Plain d ->
      Fault.with_retry ~attempts:3 ~sink:t.tsink (fun () ->
          let c = Durable.commit d ~branch ~message ops in
          (c.Engine.id, c.Engine.version))
  | Shards s ->
      (* No retry: a failed fan-out may have applied some shards, and
         replaying the same global sequence number is refused by the
         shard journals.  The handle is poisoned; degrade below. *)
      Fault.protect (fun () ->
          let h = Sharded.commit s ~branch ~message ops in
          (h.Sharded.composite, h.Sharded.seq))

let commit_branch_group t branch (items : pending list) =
  let ids = List.map (fun p -> p.req_id) items in
  let message = serve_prefix ^ String.concat "," ids in
  let ops = List.concat_map (fun p -> p.ops) items in
  let n = List.length items in
  match backend_commit t ~branch ~message ops with
  | Ok (commit_id, version) ->
      publish_branch t branch;
      Telemetry.incr t.tsink "server.commit.groups";
      Telemetry.incr t.tsink ~by:n "server.commit.acked";
      Telemetry.observe t.tsink "server.commit.group_size" (float_of_int n);
      List.iter
        (fun p ->
          let resp =
            Proto.Committed
              { req_id = p.req_id;
                commit = commit_id;
                version;
                group_size = n }
          in
          seen_record t p.req_id resp;
          reply p resp)
        items;
      Ok ()
  | Error (`Tampered h) ->
      enter_read_only t;
      let detail = "commit path: tampered node " ^ Hash.to_hex h in
      List.iter (fun p -> reply p (err Proto.Tampered detail)) items;
      Error `Stop_group
  | Error ((`Missing _ | `Malformed _) as e) ->
      (* Unknown branches are refused at dispatch against the snapshot, so
         a missing hash here — even a bare Not_found surfacing as
         [`Missing Hash.null] from deep inside the index build — means
         the store lost or mangled a node the head still references.
         That is an integrity failure, not a client error. *)
      enter_read_only t;
      let detail = "commit path: " ^ Fault.error_to_string e in
      List.iter (fun p -> reply p (err Proto.Tampered detail)) items;
      Error `Stop_group
  | Error (`Transient _ as e) -> (
      match t.backend with
      | Plain _ ->
          (* still transient after the retry budget: refuse retryably,
             keep serving — the fault was not an integrity failure. *)
          List.iter
            (fun p -> reply p (err Proto.Overload "transient store failure"))
            items;
          Ok ()
      | Shards _ ->
          (* a transient that interrupted the fan-out may have landed on
             some shards only; the in-memory handle can no longer be
             trusted to match the published composite *)
          enter_read_only t;
          let detail = "sharded commit failed: " ^ Fault.error_to_string e in
          List.iter (fun p -> reply p (err Proto.Tampered detail)) items;
          Error `Stop_group)

let process_group t (batch : pending list) =
  let now = Unix.gettimeofday () in
  (* 1. deadline-expired batches are refused, never applied late *)
  let live, expired =
    List.partition (fun p -> p.deadline = 0.0 || p.deadline >= now) batch
  in
  List.iter
    (fun p ->
      Telemetry.incr t.tsink "server.timeout";
      reply p (err Proto.Timeout "deadline expired before commit"))
    expired;
  (* 2. read-only mode refuses everything *)
  if Atomic.get t.ro then
    List.iter (fun p -> reply p (err Proto.Read_only "server is read-only")) live
  else begin
    (* 3. dedup against history and within the batch *)
    let fresh = ref [] and dups = ref [] and in_batch = Hashtbl.create 8 in
    List.iter
      (fun p ->
        match seen_find t p.req_id with
        | Some resp ->
            Telemetry.incr t.tsink "server.commit.dedup";
            reply p resp
        | None ->
            if Hashtbl.mem in_batch p.req_id then begin
              Telemetry.incr t.tsink "server.commit.dedup";
              dups := p :: !dups
            end
            else begin
              Hashtbl.add in_batch p.req_id ();
              fresh := p :: !fresh
            end)
      live;
    let fresh = List.rev !fresh in
    (* 4. group by branch, preserving arrival order inside each group *)
    let groups : (string, pending list ref) Hashtbl.t = Hashtbl.create 4 in
    let order = ref [] in
    List.iter
      (fun p ->
        match Hashtbl.find_opt groups p.branch with
        | Some l -> l := p :: !l
        | None ->
            Hashtbl.add groups p.branch (ref [ p ]);
            order := p.branch :: !order)
      fresh;
    let rec run = function
      | [] -> ()
      | branch :: rest -> (
          let items = List.rev !(Hashtbl.find groups branch) in
          match commit_branch_group t branch items with
          | Ok () -> run rest
          | Error `Stop_group ->
              (* integrity failure: everything not yet committed is now
                 refused read-only *)
              List.iter
                (fun b ->
                  List.iter
                    (fun p -> reply p (err Proto.Read_only "server is read-only"))
                    (List.rev !(Hashtbl.find groups b)))
                rest)
    in
    run (List.rev !order);
    (* 5. in-batch duplicates ride on whatever the first occurrence got *)
    List.iter
      (fun p ->
        let resp =
          match seen_find t p.req_id with
          | Some resp -> resp
          | None -> err Proto.Overload "duplicate of a refused commit"
        in
        reply p resp)
      (List.rev !dups)
  end

let writer_loop t =
  let rec loop () =
    Mutex.lock t.qmu;
    while t.running && (t.paused || Queue.is_empty t.queue) do
      Condition.wait t.qcond t.qmu
    done;
    if Queue.is_empty t.queue then begin
      (* only reachable with running = false: drain complete *)
      Mutex.unlock t.qmu
    end
    else begin
      let batch = ref [] in
      let n = ref 0 in
      let drain () =
        while (not (Queue.is_empty t.queue)) && !n < t.config.group_max do
          batch := Queue.pop t.queue :: !batch;
          Stdlib.incr n
        done
      in
      drain ();
      (* Adaptive grouping: a lone batch commits immediately — any
         grouping delay at queue depth 1 is pure added latency
         (BENCH_server.json had group mode *behind* single mode at one
         writer).  Only when the drain itself proves writers are
         arriving concurrently (2+ batches) is one bounded top-up pass
         worth it: yield so blocked writers can enqueue, then drain
         again, growing the fold toward group_max without ever waiting
         on a timer. *)
      if !n > 1 && !n < t.config.group_max && t.running then begin
        Mutex.unlock t.qmu;
        Thread.yield ();
        Mutex.lock t.qmu;
        drain ()
      end;
      Mutex.unlock t.qmu;
      process_group t (List.rev !batch);
      loop ()
    end
  in
  loop ()

(* --- session read dispatch --------------------------------------------- *)

let snap_of t branch = List.assoc_opt branch (Atomic.get t.snapshot)

let dispatch_read t (body : Proto.req) : Proto.response =
  match body with
  | Proto.Ping -> Proto.Pong
  | Proto.Stats ->
      Proto.Stats_r (Telemetry.Json.to_string (Telemetry.to_json t.tsink))
  | Proto.Head { branch } -> (
      match snap_of t branch with
      | None -> err Proto.Unknown_branch branch
      | Some s ->
          Proto.Head_r { id = s.s_id; root = s.s_root; version = s.s_version })
  | Proto.Get { branch; key } -> (
      match snap_of t branch with
      | None -> err Proto.Unknown_branch branch
      | Some s -> (
          match
            Fault.protect (fun () ->
                match s.view with
                | Mono v -> Generic.get v key
                | Multi (spec, views) -> Shard_views.get spec views key)
          with
          | Ok v -> Proto.Value v
          | Error e -> err Proto.Tampered (Fault.error_to_string e)))
  | Proto.Get_many { branch; keys } -> (
      match snap_of t branch with
      | None -> err Proto.Unknown_branch branch
      | Some s -> (
          match
            Fault.protect (fun () ->
                match s.view with
                | Mono v -> Generic.get_many v keys
                | Multi (spec, views) -> Shard_views.get_many spec views keys)
          with
          | Ok vs -> Proto.Values vs
          | Error e -> err Proto.Tampered (Fault.error_to_string e)))
  | Proto.Prove_many { branch; keys } -> (
      match snap_of t branch with
      | None -> err Proto.Unknown_branch branch
      | Some s -> (
          match
            Fault.protect (fun () ->
                match s.view with
                | Mono v -> Multiproof.encode (Generic.prove_many v keys)
                | Multi (spec, views) ->
                    (* two-layer proof; [root] in the response is the
                       composite the client verifies it against *)
                    Shard_proof.encode (Shard_proof.prove ~views spec keys))
          with
          | Ok proof -> Proto.Proof { root = s.s_root; proof }
          | Error e -> err Proto.Tampered (Fault.error_to_string e)))
  | Proto.Commit _ -> assert false  (* routed to the write path *)
  | Proto.Scan _ -> assert false  (* streamed by the session loop *)

let dispatch_commit t ~deadline ~req_id ~branch ~message ~ops : Proto.response =
  if not (Proto.valid_req_id req_id) then
    err Proto.Bad_request "invalid req_id (want [A-Za-z0-9._-]{1,64})"
  else if Atomic.get t.ro then err Proto.Read_only "server is read-only"
  else
    match seen_find t req_id with
    | Some resp ->
        Telemetry.incr t.tsink "server.commit.dedup";
        resp
    | None -> (
        match snap_of t branch with
        | None -> err Proto.Unknown_branch branch
        | Some _ -> (
            let p =
              { req_id;
                branch;
                client_message = message;
                ops;
                deadline;
                pmu = Mutex.create ();
                pcond = Condition.create ();
                resp = None }
            in
            Mutex.lock t.qmu;
            let verdict =
              if not t.running then `Stopping
              else if Queue.length t.queue >= t.config.max_queue then `Full
              else begin
                Queue.add p t.queue;
                Condition.signal t.qcond;
                `Queued
              end
            in
            Mutex.unlock t.qmu;
            match verdict with
            | `Stopping -> err Proto.Overload "server shutting down"
            | `Full ->
                Telemetry.incr t.tsink "server.overload";
                err Proto.Overload "commit queue full"
            | `Queued ->
                Mutex.lock p.pmu;
                while p.resp = None do
                  Condition.wait p.pcond p.pmu
                done;
                Mutex.unlock p.pmu;
                Option.get p.resp))

let op_name : Proto.req -> string = function
  | Proto.Ping -> "ping"
  | Proto.Head _ -> "head"
  | Proto.Get _ -> "get"
  | Proto.Get_many _ -> "get_many"
  | Proto.Prove_many _ -> "prove_many"
  | Proto.Commit _ -> "commit"
  | Proto.Stats -> "stats"
  | Proto.Scan _ -> "scan"

(* --- streaming scan ----------------------------------------------------- *)

(* A scan reply is the protocol's only multi-frame response: the lazy
   per-shard streams are pulled one bounded chunk at a time, so a huge
   range never materializes server-side, and the deadline is re-checked
   between chunks — a slow consumer cannot pin the session thread past
   its budget.  The snapshot view is immutable, so the stream stays
   consistent even while the writer publishes new heads. *)
let scan_chunk = 256

let session_scan t ~deadline ~branch ~lo ~hi ~limit send =
  Telemetry.incr t.tsink "server.req.scan";
  match snap_of t branch with
  | None -> send (err Proto.Unknown_branch branch)
  | Some s -> (
      match
        Fault.protect (fun () ->
            match s.view with
            | Mono v -> Generic.scan ?lo ?hi v
            | Multi (spec, views) -> Shard_views.scan spec views ~lo ~hi)
      with
      | exception Generic.Unsupported kind ->
          send
            (err Proto.Bad_request
               (Printf.sprintf "index kind %S does not support ordered scans"
                  kind))
      | Error e -> send (err Proto.Tampered (Fault.error_to_string e))
      | Ok seq ->
          let rec chunks seq sent =
            if deadline > 0.0 && Unix.gettimeofday () > deadline then begin
              Telemetry.incr t.tsink "server.timeout";
              send (err Proto.Timeout "deadline expired mid-scan")
            end
            else
              let budget =
                if limit > 0 then min scan_chunk (limit - sent) else scan_chunk
              in
              match
                (* pull up to [budget] entries; the tail stays lazy *)
                Fault.protect (fun () ->
                    let rec take n acc seq =
                      if n = 0 then (List.rev acc, Some seq)
                      else
                        match seq () with
                        | Seq.Nil -> (List.rev acc, None)
                        | Seq.Cons (e, tl) -> take (n - 1) (e :: acc) tl
                    in
                    take budget [] seq)
              with
              | Error e -> send (err Proto.Tampered (Fault.error_to_string e))
              | Ok (entries, rest) -> (
                  let sent = sent + List.length entries in
                  let exhausted =
                    rest = None || (limit > 0 && sent >= limit)
                  in
                  match
                    send (Proto.Entries { entries; more = not exhausted })
                  with
                  | `Stop -> `Stop
                  | `Cont ->
                      if exhausted then `Cont
                      else chunks (Option.get rest) sent)
          in
          chunks seq 0)

let handle_request t (r : Proto.request) : Proto.response =
  let name = op_name r.body in
  Telemetry.incr t.tsink ("server.req." ^ name);
  let t0 = Unix.gettimeofday () in
  let deadline =
    if r.deadline_ms <= 0 then 0.0
    else t0 +. (float_of_int r.deadline_ms /. 1000.0)
  in
  let resp =
    match r.body with
    | Proto.Commit { req_id; branch; message; ops } ->
        dispatch_commit t ~deadline ~req_id ~branch ~message ~ops
    | body ->
        if deadline > 0.0 && Unix.gettimeofday () > deadline then begin
          Telemetry.incr t.tsink "server.timeout";
          err Proto.Timeout "deadline expired"
        end
        else dispatch_read t body
  in
  Telemetry.observe t.tsink
    ("server.req." ^ name)
    (Unix.gettimeofday () -. t0);
  resp

(* --- session loop ------------------------------------------------------- *)

(* The session thread owns its fd for writing; stop wakes a blocked read
   with [shutdown] (closing an fd another thread is selecting on does not
   reliably wake it — shutdown does, as a readable EOF). *)
let session_loop t sid fd =
  let send resp =
    match Proto.Io.write_frame fd (Proto.encode_response resp) with
    | Ok () -> `Cont
    | Error `Closed -> `Stop
  in
  let rec loop () =
    match Proto.Io.read_frame fd with
    | Error `Closed | Error `Timeout -> ()
    | Error (`Tampered d) ->
        (* refuse and hang up: a peer that sends damaged frames cannot be
           resynchronized, and nothing of the frame was parsed. *)
        Telemetry.incr t.tsink "server.refused.tampered";
        ignore (send (err Proto.Tampered d))
    | Error (`Malformed d) ->
        Telemetry.incr t.tsink "server.refused.malformed";
        ignore (send (err Proto.Bad_request d))
    | Ok payload -> (
        match Proto.decode_request payload with
        | Error (`Malformed d) ->
            Telemetry.incr t.tsink "server.refused.malformed";
            ignore (send (err Proto.Bad_request d))
        | Ok { Proto.deadline_ms; body = Proto.Scan { branch; lo; hi; limit } }
          -> (
            (* streaming: many frames per request, so it cannot go
               through the one-response [handle_request] path *)
            let deadline =
              if deadline_ms <= 0 then 0.0
              else Unix.gettimeofday () +. (float_of_int deadline_ms /. 1000.0)
            in
            let verdict =
              try session_scan t ~deadline ~branch ~lo ~hi ~limit send
              with e -> send (err Proto.Bad_request (Printexc.to_string e))
            in
            match verdict with `Cont -> loop () | `Stop -> ())
        | Ok req -> (
            let resp =
              try handle_request t req
              with e ->
                (* last-ditch: no exception may kill the session thread
                   silently or escape to the accept loop *)
                err Proto.Bad_request (Printexc.to_string e)
            in
            match send resp with `Cont -> loop () | `Stop -> ()))
  in
  (try loop () with _ -> ());
  Mutex.lock t.smu;
  Hashtbl.remove t.sessions sid;
  Mutex.unlock t.smu;
  (try Unix.close fd with Unix.Unix_error _ -> ())

let accept_loop t lfd =
  (* poll so stop() can retire the thread without platform-specific
     listener-shutdown semantics *)
  let rec loop () =
    let keep_going = Mutex.lock t.smu; let r = not t.stopped in Mutex.unlock t.smu; r in
    if keep_going then begin
      match Unix.select [ lfd ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _ -> (
          match Unix.accept lfd with
          | exception Unix.Unix_error _ -> loop ()
          | fd, _ ->
              Mutex.lock t.smu;
              let over = Hashtbl.length t.sessions >= t.config.session_max in
              if over || t.stopped then begin
                Mutex.unlock t.smu;
                Telemetry.incr t.tsink "server.session.reject";
                ignore
                  (Proto.Io.write_frame fd
                     (Proto.encode_response
                        (err Proto.Overload "too many sessions")));
                (try Unix.close fd with Unix.Unix_error _ -> ())
              end
              else begin
                let sid = t.next_session in
                t.next_session <- sid + 1;
                Hashtbl.replace t.sessions sid fd;
                Telemetry.incr t.tsink "server.sessions";
                let th = Thread.create (fun () -> session_loop t sid fd) () in
                t.session_threads <- th :: t.session_threads;
                Mutex.unlock t.smu
              end;
              loop ())
    end
  in
  try loop () with _ -> ()

(* --- lifecycle ---------------------------------------------------------- *)

(* A SIGKILLed server leaves its socket file behind and the next bind
   fails EADDRINUSE.  Probe first: if nothing answers, the file is a
   corpse and safe to unlink; if something accepts, a live server owns
   the path and the bind must fail. *)
let reclaim_stale_unix_socket path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let alive =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) -> false
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if not alive then try Unix.unlink path with Unix.Unix_error _ -> ()
  end

let bind_addr (a : addr) : addr * Unix.file_descr =
  match a with
  | `Unix path ->
      reclaim_stale_unix_socket path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX path);
         Unix.listen fd 64
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      (`Unix path, fd)
  | `Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
         Unix.listen fd 64
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      let port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      (`Tcp port, fd)

let start_backend ?(config = default_config) ~backend ~listen () =
  let tsink =
    match backend with
    | Plain d -> Siri_store.Store.sink (Engine.store (Durable.engine d))
    | Shards s -> Sharded.sink s
  in
  let listeners = List.map bind_addr listen in
  let t =
    { config;
      backend;
      tsink;
      snapshot = Atomic.make [];
      ro = Atomic.make false;
      qmu = Mutex.create ();
      qcond = Condition.create ();
      queue = Queue.create ();
      running = true;
      paused = false;
      seen_mu = Mutex.create ();
      seen = Hashtbl.create 256;
      seen_order = Queue.create ();
      smu = Mutex.create ();
      sessions = Hashtbl.create 16;
      session_threads = [];
      next_session = 0;
      accept_threads = [];
      writer = None;
      listeners;
      stopped = false }
  in
  publish_all t;
  recover_seen t;
  t.writer <- Some (Thread.create writer_loop t);
  t.accept_threads <-
    List.map (fun (_, lfd) -> Thread.create (accept_loop t) lfd) listeners;
  t

let start ?config ~durable ~listen () =
  start_backend ?config ~backend:(Plain durable) ~listen ()

let start_sharded ?config ~sharded ~listen () =
  start_backend ?config ~backend:(Shards sharded) ~listen ()

let force_read_only t = enter_read_only t

let pause_writer t =
  Mutex.lock t.qmu;
  t.paused <- true;
  Mutex.unlock t.qmu

let resume_writer t =
  Mutex.lock t.qmu;
  t.paused <- false;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qmu

let queue_length t =
  Mutex.lock t.qmu;
  let n = Queue.length t.queue in
  Mutex.unlock t.qmu;
  n

let stop t =
  let first =
    Mutex.lock t.smu;
    let f = not t.stopped in
    t.stopped <- true;
    Mutex.unlock t.smu;
    f
  in
  if first then begin
    (* 1. refuse new writes, wake the writer and let it drain the queue *)
    Mutex.lock t.qmu;
    t.running <- false;
    t.paused <- false;
    Condition.broadcast t.qcond;
    Mutex.unlock t.qmu;
    (match t.writer with Some th -> Thread.join th | None -> ());
    (* 2. retire the accept loops (they poll [stopped]) *)
    List.iter Thread.join t.accept_threads;
    List.iter
      (fun ((a : addr), lfd) ->
        (try Unix.close lfd with Unix.Unix_error _ -> ());
        match a with
        | `Unix path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
        | `Tcp _ -> ())
      t.listeners;
    (* 3. wake blocked session reads and join the session threads *)
    Mutex.lock t.smu;
    Hashtbl.iter
      (fun _ fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      t.sessions;
    let threads = t.session_threads in
    t.session_threads <- [];
    Mutex.unlock t.smu;
    List.iter Thread.join threads;
    (* 4. flush and close the journal(s) *)
    match t.backend with
    | Plain d -> Durable.close d
    | Shards s -> Sharded.close s
  end
