(* See client.mli.  The handle keeps at most one live socket; any
   transport failure tears it down and raises [Store.Transient] inside
   the Fault.with_retry thunk, which re-dials with full-jitter backoff.
   Integrity failures short-circuit out of the retry loop as values. *)

module Hash = Siri_crypto.Hash
module Kv = Siri_core.Kv
module Telemetry = Siri_telemetry.Telemetry
module Fault = Siri_fault.Fault
module Store = Siri_store.Store

type t = {
  addr : Server.addr;
  connect_timeout_s : float;
  request_timeout_s : float;
  attempts : int;
  backoff_s : float;
  retry_jitter : int option;
  sink : Telemetry.sink;
  mutable fd : Unix.file_descr option;
  mutable dialled_once : bool;
}

type error =
  [ `Unavailable of string
  | `Timeout
  | `Overload
  | `Read_only
  | `Unknown_branch of string
  | `Tampered of string
  | `Refused of string
  | `Unexpected of string ]

let error_to_string : error -> string = function
  | `Unavailable d -> "unavailable: " ^ d
  | `Timeout -> "timeout"
  | `Overload -> "overload"
  | `Read_only -> "read-only"
  | `Unknown_branch b -> "unknown branch: " ^ b
  | `Tampered d -> "tampered: " ^ d
  | `Refused d -> "refused: " ^ d
  | `Unexpected d -> "unexpected response: " ^ d

let req_counter = ref 0

let fresh_req_id () =
  Stdlib.incr req_counter;
  Printf.sprintf "c%d-%.0f-%d" (Unix.getpid ())
    (Unix.gettimeofday () *. 1e3)
    !req_counter

(* --- transport --------------------------------------------------------- *)

let sockaddr_of : Server.addr -> Unix.sockaddr = function
  | `Unix path -> Unix.ADDR_UNIX path
  | `Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let transient () = raise (Store.Transient Hash.null)

(* Non-blocking connect + select so a dead endpoint fails in
   [connect_timeout_s] instead of the kernel's default. *)
let dial t =
  let domain =
    match t.addr with `Unix _ -> Unix.PF_UNIX | `Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  let fail () =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    transient ()
  in
  (try
     Unix.set_nonblock fd;
     (try Unix.connect fd (sockaddr_of t.addr) with
     | Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _)
       -> (
         match Unix.select [] [ fd ] [] t.connect_timeout_s with
         | _, [ _ ], _ -> (
             match Unix.getsockopt_error fd with
             | None -> ()
             | Some e -> raise (Unix.Unix_error (e, "connect", "")))
         | _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))));
     Unix.clear_nonblock fd
   with Unix.Unix_error _ -> fail ());
  if t.dialled_once then Telemetry.incr t.sink "server.reconnect";
  t.dialled_once <- true;
  t.fd <- Some fd;
  fd

let drop t =
  match t.fd with
  | None -> ()
  | Some fd ->
      t.fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())

let live_fd t = match t.fd with Some fd -> fd | None -> dial t

(* One request/response exchange; raises Store.Transient on anything
   retryable, returns integrity failures as values. *)
let exchange_exn t payload :
    (Proto.response, [ `Tampered of string | `Malformed of string ]) result =
  let fd = live_fd t in
  Telemetry.incr t.sink "client.req";
  (match Proto.Io.write_frame fd payload with
  | Ok () -> ()
  | Error `Closed ->
      drop t;
      transient ());
  let deadline = Unix.gettimeofday () +. t.request_timeout_s in
  match Proto.Io.read_frame ~deadline fd with
  | Ok resp_payload -> (
      match Proto.decode_response resp_payload with
      | Ok resp -> Ok resp
      | Error (`Malformed _ as e) ->
          drop t;
          Error e)
  | Error (`Closed | `Timeout) ->
      (* a timed-out wait abandons the connection: the reply may still
         arrive later and would desynchronize request/response pairing *)
      drop t;
      transient ()
  | Error ((`Tampered _ | `Malformed _) as e) ->
      drop t;
      Error e

let roundtrip t (req : Proto.request) :
    (Proto.response, error) result =
  let payload = Proto.encode_request req in
  match
    Fault.with_retry ~attempts:t.attempts ~backoff_s:t.backoff_s
      ?jitter:t.retry_jitter ~sink:t.sink
      (fun () -> exchange_exn t payload)
  with
  | Ok (Ok resp) -> Ok resp
  | Ok (Error (`Tampered d)) -> Error (`Tampered d)
  | Ok (Error (`Malformed d)) -> Error (`Tampered d)
  | Error (`Transient _) ->
      Error (`Unavailable "no response after retry budget")
  | Error e -> Error (`Unavailable (Fault.error_to_string e))

let request t ?(deadline_ms = 0) body = roundtrip t { Proto.deadline_ms; body }

let of_err (code : Proto.error_code) detail branch : error =
  match code with
  | Proto.Overload -> `Overload
  | Proto.Timeout -> `Timeout
  | Proto.Tampered -> `Tampered detail
  | Proto.Read_only -> `Read_only
  | Proto.Bad_request -> `Refused detail
  | Proto.Unknown_branch ->
      `Unknown_branch (if detail = "" then branch else detail)

(* --- lifecycle --------------------------------------------------------- *)

let connect ?(connect_timeout_s = 5.0) ?(request_timeout_s = 10.0)
    ?(attempts = 3) ?(backoff_s = 0.05) ?retry_jitter
    ?(sink = Telemetry.null) ~addr () =
  (* A write into a socket whose server died mid-session must surface as
     EPIPE (mapped to [`Unavailable] and retried) — not kill the process.
     Set once, process-wide: any program that dials a server has opted
     into handling disconnects as values. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let t =
    { addr;
      connect_timeout_s;
      request_timeout_s;
      attempts;
      backoff_s;
      retry_jitter;
      sink;
      fd = None;
      dialled_once = false }
  in
  match request t Proto.Ping with
  | Ok Proto.Pong -> Ok t
  | Ok (Proto.Err { code; detail }) -> Error (of_err code detail "")
  | Ok _ -> Error (`Unexpected "ping")
  | Error e -> Error e

let close t = drop t

(* --- typed requests ---------------------------------------------------- *)

let ping ?deadline_ms t =
  match request t ?deadline_ms Proto.Ping with
  | Ok Proto.Pong -> Ok ()
  | Ok (Proto.Err { code; detail }) -> Error (of_err code detail "")
  | Ok _ -> Error (`Unexpected "ping")
  | Error e -> Error e

let head ?deadline_ms t ~branch =
  match request t ?deadline_ms (Proto.Head { branch }) with
  | Ok (Proto.Head_r { id; root; version }) -> Ok (id, root, version)
  | Ok (Proto.Err { code; detail }) -> Error (of_err code detail branch)
  | Ok _ -> Error (`Unexpected "head")
  | Error e -> Error e

let get ?deadline_ms t ~branch key =
  match request t ?deadline_ms (Proto.Get { branch; key }) with
  | Ok (Proto.Value v) -> Ok v
  | Ok (Proto.Err { code; detail }) -> Error (of_err code detail branch)
  | Ok _ -> Error (`Unexpected "get")
  | Error e -> Error e

let get_many ?deadline_ms t ~branch keys =
  match request t ?deadline_ms (Proto.Get_many { branch; keys }) with
  | Ok (Proto.Values vs) -> Ok vs
  | Ok (Proto.Err { code; detail }) -> Error (of_err code detail branch)
  | Ok _ -> Error (`Unexpected "get_many")
  | Error e -> Error e

(* A scan reply is a stream of [Entries] frames, so it cannot ride on
   [roundtrip]: a retry after the first chunk arrived would re-run the
   scan and duplicate entries.  Dial (retryably) happens implicitly in
   [live_fd]; once the request is written the stream is read to its
   [more = false] frame or abandoned — any transport fault mid-stream
   drops the connection and surfaces as [`Unavailable], never a
   silently truncated result. *)
let scan ?(deadline_ms = 0) ?lo ?hi ?(limit = 0) t ~branch =
  let payload =
    Proto.encode_request
      { Proto.deadline_ms; body = Proto.Scan { branch; lo; hi; limit } }
  in
  try
    let fd = live_fd t in
    Telemetry.incr t.sink "client.req";
    (match Proto.Io.write_frame fd payload with
    | Ok () -> ()
    | Error `Closed ->
        drop t;
        transient ());
    let deadline = Unix.gettimeofday () +. t.request_timeout_s in
    let rec read acc =
      match Proto.Io.read_frame ~deadline fd with
      | Ok p -> (
          match Proto.decode_response p with
          | Ok (Proto.Entries { entries; more }) ->
              let acc = List.rev_append entries acc in
              if more then read acc else Ok (List.rev acc)
          | Ok (Proto.Err { code; detail }) -> Error (of_err code detail branch)
          | Ok _ ->
              drop t;
              Error (`Unexpected "scan")
          | Error (`Malformed d) ->
              drop t;
              Error (`Tampered d))
      | Error (`Closed | `Timeout) ->
          drop t;
          Error (`Unavailable "scan stream interrupted")
      | Error (`Tampered d | `Malformed d) ->
          drop t;
          Error (`Tampered d)
    in
    read []
  with Store.Transient _ -> Error (`Unavailable "server unreachable")

let prove_many ?deadline_ms t ~branch keys =
  match request t ?deadline_ms (Proto.Prove_many { branch; keys }) with
  | Ok (Proto.Proof { root; proof }) -> Ok (root, proof)
  | Ok (Proto.Err { code; detail }) -> Error (of_err code detail branch)
  | Ok _ -> Error (`Unexpected "prove_many")
  | Error e -> Error e

let commit ?deadline_ms ?req_id t ~branch ~message ops =
  let req_id = match req_id with Some id -> id | None -> fresh_req_id () in
  match
    request t ?deadline_ms (Proto.Commit { req_id; branch; message; ops })
  with
  | Ok (Proto.Committed { commit; version; group_size; _ }) ->
      Ok (commit, version, group_size)
  | Ok (Proto.Err { code; detail }) -> Error (of_err code detail branch)
  | Ok _ -> Error (`Unexpected "commit")
  | Error e -> Error e

let stats ?deadline_ms t =
  match request t ?deadline_ms Proto.Stats with
  | Ok (Proto.Stats_r s) -> Ok s
  | Ok (Proto.Err { code; detail }) -> Error (of_err code detail "")
  | Ok _ -> Error (`Unexpected "stats")
  | Error e -> Error e
