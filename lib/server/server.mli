(** A real multi-client SIRI server over the durable Forkbase engine.

    One process serves many concurrent sessions (one thread per accepted
    connection, Unix-domain or TCP-loopback listeners) on top of a
    {!Siri_wal.Durable} engine:

    - {b Snapshot-isolated, lock-free reads.}  After every commit the
      writer publishes an immutable snapshot (branch → head commit +
      {!Siri_core.Generic} view) through an [Atomic]; sessions serve
      [Get]/[Get_many]/[Prove_many]/[Head] straight off that snapshot
      without taking any lock — old roots stay valid forever, which is
      the SIRI property doing the concurrency work.

    - {b Single-writer group commit.}  Client write batches queue into a
      bounded queue; one writer thread drains up to [group_max] of them,
      folds all batches for the same branch into {e one} engine commit —
      one batched index build, one WAL frame, one fsync — and acks every
      folded batch with the same commit id and the group size.  The queue
      bound is backpressure: a full queue refuses new writes with
      [Err Overload] instead of hiding them in unbounded latency, and a
      request whose [deadline_ms] expired before the writer reached it is
      refused with [Err Timeout], never silently applied late.

    - {b Idempotent commits.}  Request ids ride inside the group-commit
      message (["serve:id1,id2,…"]), so the dedup table rebuilds from the
      commit history on restart: a client that retries an unacknowledged
      commit after a crash gets it applied {e at most once}, even though
      the original may or may not have reached the journal.

    - {b Graceful degradation.}  If the commit path reports [`Tampered],
      the server enters read-only mode: writes are refused with
      [Err Read_only], reads keep being served off the last good
      snapshot.  Damaged request frames are refused ([`Tampered] /
      [`Malformed]) and the session closed; no byte from the wire is ever
      parsed unverified and no exception escapes the accept loop.

    Telemetry (on the engine store's sink): [server.req.<op>] counters
    and latency histograms, [server.commit.acked] / [server.commit.groups]
    / [server.commit.dedup] counters with the [server.commit.group_size]
    histogram, [server.overload], [server.timeout], [server.readonly.enter],
    [server.refused.tampered] / [server.refused.malformed], and
    [server.sessions].  Conservation: [server.commit.groups] = WAL frames
    appended by the server, and [server.commit.acked] = the histogram sum
    of [server.commit.group_size] (pinned in [test_server]). *)

module Durable = Siri_wal.Durable

type addr = [ `Unix of string | `Tcp of int  (** loopback port; 0 = pick *) ]

type config = {
  max_queue : int;  (** pending write batches before [Overload] (256) *)
  group_max : int;  (** write batches folded per group commit (64) *)
  idempotency_cap : int;  (** request ids remembered in memory (4096) *)
  session_max : int;  (** concurrent sessions before refusing (64) *)
}

val default_config : config

type t

val start :
  ?config:config -> durable:Durable.t -> listen:addr list -> unit -> t
(** Bind every address, recover the idempotency table from the commit
    history, publish the initial snapshot and spawn the accept and writer
    threads.  The durable engine must have been opened by the caller
    (backend, sync mode and fault gates are its business); the server
    writes through {!Durable.commit} only.  A Unix socket path left
    behind by a killed server is probed and reclaimed (unlinked) if
    nothing answers on it; raises [Unix.Unix_error] if a bind fails,
    including when a {e live} server already owns the path. *)

val start_sharded :
  ?config:config ->
  sharded:Siri_shard.Sharded.t ->
  listen:addr list ->
  unit ->
  t
(** Like {!start}, over a sharded keyspace engine.  Group commit batches
    are partitioned per shard and the shard commits run concurrently
    under the single writer; [Head] answers the composite root (as both
    id and root) with the global sequence number as version, and
    [Prove_many] returns an encoded {!Siri_shard.Shard_proof} (the
    response's [root] is the composite to verify it against — the
    leading payload byte distinguishes it from a flat multiproof).  The
    engine should be opened with [~runner:`Threads]: shard journal
    writes and fsyncs still overlap, while index builds stay on the one
    domain whose single-writer/many-reader store discipline the
    lock-free snapshot reads rely on.  A failed sharded commit cannot be
    blindly retried (some shards may have applied), so the server
    degrades to read-only instead — the directory recovers to the
    published composite prefix on restart. *)

val listening : t -> addr list
(** The bound addresses, with [`Tcp 0] resolved to the actual port. *)

val sink : t -> Siri_telemetry.Telemetry.sink
(** The engine store's sink — where all [server.*] telemetry lands. *)

val read_only : t -> bool

val force_read_only : t -> unit
(** Enter read-only mode as if the commit path had reported [`Tampered]
    (operational hook; tests use the real path). *)

val pause_writer : t -> unit
(** Test/bench hook: hold the writer so the queue fills deterministically
    (backpressure and deadline tests).  {!stop} resumes it. *)

val resume_writer : t -> unit

val queue_length : t -> int
(** Write batches currently queued (test/bench observability). *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, refuse new writes, drain the queue
    (every queued batch is still committed and acked), close all
    sessions, join every thread and close the durable journal.
    Idempotent. *)
