module Hash = Siri_crypto.Hash
module Wire = Siri_codec.Wire
module Frame = Siri_codec.Frame
module Kv = Siri_core.Kv

let version = 1
let max_frame = 64 * 1024 * 1024

type req =
  | Ping
  | Head of { branch : string }
  | Get of { branch : string; key : Kv.key }
  | Get_many of { branch : string; keys : Kv.key list }
  | Prove_many of { branch : string; keys : Kv.key list }
  | Commit of {
      req_id : string;
      branch : string;
      message : string;
      ops : Kv.op list;
    }
  | Stats
  | Scan of {
      branch : string;
      lo : Kv.key option;
      hi : Kv.key option;
      limit : int;  (** 0 = unbounded *)
    }

type request = { deadline_ms : int; body : req }

type error_code =
  | Overload
  | Timeout
  | Tampered
  | Read_only
  | Bad_request
  | Unknown_branch

type response =
  | Pong
  | Head_r of { id : Hash.t; root : Hash.t; version : int }
  | Value of Kv.value option
  | Values of (Kv.key * Kv.value option) list
  | Proof of { root : Hash.t; proof : string }
  | Committed of {
      req_id : string;
      commit : Hash.t;
      version : int;
      group_size : int;
    }
  | Stats_r of string
  | Err of { code : error_code; detail : string }
  | Entries of { entries : (Kv.key * Kv.value) list; more : bool }
      (** One bounded chunk of a streaming scan reply; the server keeps
          sending [Entries] frames until [more = false] (or an [Err]
          frame aborts the stream). *)

let error_code_to_string = function
  | Overload -> "overload"
  | Timeout -> "timeout"
  | Tampered -> "tampered"
  | Read_only -> "read-only"
  | Bad_request -> "bad-request"
  | Unknown_branch -> "unknown-branch"

let valid_req_id s =
  let n = String.length s in
  n >= 1 && n <= 64
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true
         | _ -> false)
       s

(* --- payload codec ------------------------------------------------------------ *)

(* Reading a count that the sender controls: each element needs at least
   one byte of input, so a count larger than the remaining bytes is a
   forgery — refuse it before allocating anything. *)
let checked_count r =
  let n = Wire.Reader.varint r in
  if n > Wire.Reader.remaining r then failwith "forged list count";
  n

let put_ops w ops =
  Wire.Writer.varint w (List.length ops);
  List.iter
    (function
      | Kv.Put (k, v) ->
          Wire.Writer.u8 w 0;
          Wire.Writer.str w k;
          Wire.Writer.str w v
      | Kv.Del k ->
          Wire.Writer.u8 w 1;
          Wire.Writer.str w k)
    ops

let get_ops r =
  let n = checked_count r in
  List.init n (fun _ ->
      match Wire.Reader.u8 r with
      | 0 ->
          let k = Wire.Reader.str r in
          let v = Wire.Reader.str r in
          Kv.Put (k, v)
      | 1 -> Kv.Del (Wire.Reader.str r)
      | t -> failwith (Printf.sprintf "bad op tag %d" t))

let put_keys w keys =
  Wire.Writer.varint w (List.length keys);
  List.iter (Wire.Writer.str w) keys

let get_keys r =
  let n = checked_count r in
  List.init n (fun _ -> Wire.Reader.str r)

let put_key_opt w = function
  | None -> Wire.Writer.u8 w 0
  | Some k ->
      Wire.Writer.u8 w 1;
      Wire.Writer.str w k

let get_key_opt r =
  match Wire.Reader.u8 r with
  | 0 -> None
  | 1 -> Some (Wire.Reader.str r)
  | t -> failwith (Printf.sprintf "bad option tag %d" t)

let encode_request { deadline_ms; body } =
  let w = Wire.Writer.create () in
  Wire.Writer.u8 w version;
  Wire.Writer.u32 w (max 0 deadline_ms);
  (match body with
  | Ping -> Wire.Writer.u8 w 0
  | Head { branch } ->
      Wire.Writer.u8 w 1;
      Wire.Writer.str w branch
  | Get { branch; key } ->
      Wire.Writer.u8 w 2;
      Wire.Writer.str w branch;
      Wire.Writer.str w key
  | Get_many { branch; keys } ->
      Wire.Writer.u8 w 3;
      Wire.Writer.str w branch;
      put_keys w keys
  | Prove_many { branch; keys } ->
      Wire.Writer.u8 w 4;
      Wire.Writer.str w branch;
      put_keys w keys
  | Commit { req_id; branch; message; ops } ->
      Wire.Writer.u8 w 5;
      Wire.Writer.str w req_id;
      Wire.Writer.str w branch;
      Wire.Writer.str w message;
      put_ops w ops
  | Stats -> Wire.Writer.u8 w 6
  | Scan { branch; lo; hi; limit } ->
      Wire.Writer.u8 w 7;
      Wire.Writer.str w branch;
      put_key_opt w lo;
      put_key_opt w hi;
      Wire.Writer.varint w limit);
  Wire.Writer.contents w

(* Decoders are total: every parse failure — truncation, a bad tag, a
   version mismatch, trailing bytes, a forged count — folds into
   [`Malformed].  Nothing else may escape. *)
let decode payload read =
  match
    let r = Wire.Reader.of_string payload in
    let v = Wire.Reader.u8 r in
    if v <> version then failwith (Printf.sprintf "protocol version %d" v);
    let m = read r in
    if not (Wire.Reader.at_end r) then failwith "trailing bytes";
    m
  with
  | m -> Ok m
  | exception Wire.Reader.Truncated -> Error (`Malformed "truncated message")
  | exception Failure msg -> Error (`Malformed msg)
  | exception Invalid_argument msg -> Error (`Malformed msg)

let decode_request payload =
  decode payload @@ fun r ->
  let deadline_ms = Wire.Reader.u32 r in
  let body =
    match Wire.Reader.u8 r with
    | 0 -> Ping
    | 1 -> Head { branch = Wire.Reader.str r }
    | 2 ->
        let branch = Wire.Reader.str r in
        let key = Wire.Reader.str r in
        Get { branch; key }
    | 3 ->
        let branch = Wire.Reader.str r in
        Get_many { branch; keys = get_keys r }
    | 4 ->
        let branch = Wire.Reader.str r in
        Prove_many { branch; keys = get_keys r }
    | 5 ->
        let req_id = Wire.Reader.str r in
        if not (valid_req_id req_id) then failwith "invalid request id";
        let branch = Wire.Reader.str r in
        let message = Wire.Reader.str r in
        Commit { req_id; branch; message; ops = get_ops r }
    | 6 -> Stats
    | 7 ->
        let branch = Wire.Reader.str r in
        let lo = get_key_opt r in
        let hi = get_key_opt r in
        let limit = Wire.Reader.varint r in
        Scan { branch; lo; hi; limit }
    | t -> failwith (Printf.sprintf "bad request tag %d" t)
  in
  { deadline_ms; body }

let code_byte = function
  | Overload -> 0
  | Timeout -> 1
  | Tampered -> 2
  | Read_only -> 3
  | Bad_request -> 4
  | Unknown_branch -> 5

let code_of_byte = function
  | 0 -> Overload
  | 1 -> Timeout
  | 2 -> Tampered
  | 3 -> Read_only
  | 4 -> Bad_request
  | 5 -> Unknown_branch
  | b -> failwith (Printf.sprintf "bad error code %d" b)

let put_value_opt w = function
  | None -> Wire.Writer.u8 w 0
  | Some v ->
      Wire.Writer.u8 w 1;
      Wire.Writer.str w v

let get_value_opt r =
  match Wire.Reader.u8 r with
  | 0 -> None
  | 1 -> Some (Wire.Reader.str r)
  | t -> failwith (Printf.sprintf "bad option tag %d" t)

let encode_response resp =
  let w = Wire.Writer.create () in
  Wire.Writer.u8 w version;
  (match resp with
  | Pong -> Wire.Writer.u8 w 0
  | Head_r { id; root; version = v } ->
      Wire.Writer.u8 w 1;
      Wire.Writer.hash w id;
      Wire.Writer.hash w root;
      Wire.Writer.varint w v
  | Value v ->
      Wire.Writer.u8 w 2;
      put_value_opt w v
  | Values kvs ->
      Wire.Writer.u8 w 3;
      Wire.Writer.varint w (List.length kvs);
      List.iter
        (fun (k, v) ->
          Wire.Writer.str w k;
          put_value_opt w v)
        kvs
  | Proof { root; proof } ->
      Wire.Writer.u8 w 4;
      Wire.Writer.hash w root;
      Wire.Writer.str w proof
  | Committed { req_id; commit; version = v; group_size } ->
      Wire.Writer.u8 w 5;
      Wire.Writer.str w req_id;
      Wire.Writer.hash w commit;
      Wire.Writer.varint w v;
      Wire.Writer.varint w group_size
  | Stats_r json ->
      Wire.Writer.u8 w 6;
      Wire.Writer.str w json
  | Err { code; detail } ->
      Wire.Writer.u8 w 7;
      Wire.Writer.u8 w (code_byte code);
      Wire.Writer.str w detail
  | Entries { entries; more } ->
      Wire.Writer.u8 w 8;
      Wire.Writer.varint w (List.length entries);
      List.iter
        (fun (k, v) ->
          Wire.Writer.str w k;
          Wire.Writer.str w v)
        entries;
      Wire.Writer.u8 w (if more then 1 else 0));
  Wire.Writer.contents w

let decode_response payload =
  decode payload @@ fun r ->
  match Wire.Reader.u8 r with
  | 0 -> Pong
  | 1 ->
      let id = Wire.Reader.hash r in
      let root = Wire.Reader.hash r in
      let version = Wire.Reader.varint r in
      Head_r { id; root; version }
  | 2 -> Value (get_value_opt r)
  | 3 ->
      let n = checked_count r in
      Values
        (List.init n (fun _ ->
             let k = Wire.Reader.str r in
             (k, get_value_opt r)))
  | 4 ->
      let root = Wire.Reader.hash r in
      let proof = Wire.Reader.str r in
      Proof { root; proof }
  | 5 ->
      let req_id = Wire.Reader.str r in
      let commit = Wire.Reader.hash r in
      let version = Wire.Reader.varint r in
      let group_size = Wire.Reader.varint r in
      Committed { req_id; commit; version; group_size }
  | 6 -> Stats_r (Wire.Reader.str r)
  | 7 ->
      let code = code_of_byte (Wire.Reader.u8 r) in
      let detail = Wire.Reader.str r in
      Err { code; detail }
  | 8 ->
      let n = checked_count r in
      let entries =
        List.init n (fun _ ->
            let k = Wire.Reader.str r in
            let v = Wire.Reader.str r in
            (k, v))
      in
      let more =
        match Wire.Reader.u8 r with
        | 0 -> false
        | 1 -> true
        | t -> failwith (Printf.sprintf "bad more flag %d" t)
      in
      Entries { entries; more }
  | t -> failwith (Printf.sprintf "bad response tag %d" t)

(* --- framing ------------------------------------------------------------------- *)

let seal = Frame.encode

let unseal blob =
  if String.length blob > max_frame + Frame.header_len then
    Error (`Malformed "frame too large")
  else
    match Frame.step blob ~pos:0 with
    | Frame.Frame { payload_off; payload_len; next }
      when next = String.length blob ->
        Ok (String.sub blob payload_off payload_len)
    | Frame.Frame _ -> Error (`Malformed "trailing bytes after frame")
    | Frame.End -> Error (`Malformed "empty frame")
    | Frame.Torn n -> Error (`Malformed (Printf.sprintf "torn frame (%d bytes)" n))
    | Frame.Corrupt -> Error (`Tampered "frame checksum mismatch")

(* --- socket transport ---------------------------------------------------------- *)

module Io = struct
  let write_frame fd payload =
    let blob = seal payload in
    let len = String.length blob in
    let buf = Bytes.unsafe_of_string blob in
    let rec go off =
      if off >= len then Ok ()
      else
        match Unix.write fd buf off (len - off) with
        | n -> go (off + n)
        | exception
            Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
          ->
            Error `Closed
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    in
    go 0

  (* [recv_exact] fills [buf.[off .. off+len)] from the socket, waiting in
     [select] so an absolute [deadline] bounds the whole read.  A closed
     descriptor (the server's stop path closes session fds from another
     thread) surfaces as [`Closed], never an exception. *)
  let recv_exact fd buf ~off ~len ~deadline =
    let rec go off len =
      if len = 0 then Ok ()
      else
        let timeout =
          match deadline with
          | None -> -1.0 (* negative = block *)
          | Some d -> d -. Unix.gettimeofday ()
        in
        if (match deadline with Some _ -> timeout <= 0. | None -> false) then
          Error `Timeout
        else
          match Unix.select [ fd ] [] [] timeout with
          | [], _, _ -> Error `Timeout
          | _ -> (
              match Unix.read fd buf off len with
              | 0 -> Error `Closed
              | n -> go (off + n) (len - n)
              | exception
                  Unix.Unix_error
                    ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
                  Error `Closed
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len)
          | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
              Error `Closed
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
    in
    go off len

  let read_frame ?deadline fd =
    let hdr = Bytes.create 4 in
    match recv_exact fd hdr ~off:0 ~len:4 ~deadline with
    | Error _ as e -> e
    | Ok () ->
        let len =
          (Char.code (Bytes.get hdr 0) lsl 24)
          lor (Char.code (Bytes.get hdr 1) lsl 16)
          lor (Char.code (Bytes.get hdr 2) lsl 8)
          lor Char.code (Bytes.get hdr 3)
        in
        if len > max_frame then
          (* A forged (or flipped) length: refuse before allocating.  The
             checksum would catch it too, but not before the allocation. *)
          Error (`Malformed "frame too large")
        else begin
          let total = 4 + Hash.size + len in
          let blob = Bytes.create total in
          Bytes.blit hdr 0 blob 0 4;
          match recv_exact fd blob ~off:4 ~len:(total - 4) ~deadline with
          | Error _ as e -> e
          | Ok () -> (unseal (Bytes.unsafe_to_string blob) :> (string, _) result)
        end
end
