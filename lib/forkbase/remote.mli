(** Simulated client/server deployment (Section 5.6).

    The Forkbase system experiment runs a servlet and a client over a
    network: reads that miss the client's node cache pay a round trip plus
    transfer time, writes ship their bytes to the server.  The simulation
    attaches observers to the node store and accounts those costs in
    *simulated seconds* — the benchmark then reports
    [compute time + simulated network time], which reproduces the régime
    where remote access dominates without actually sleeping.

    A Noms-like deployment is the same simulation without a client cache
    (every read pays the HTTP round trip) and with a higher per-request
    overhead. *)

module Store = Siri_store.Store

type network = {
  rtt_s : float;  (** per-request round-trip latency *)
  bandwidth_bps : float;  (** payload bytes per second *)
}

val of_link : Siri_core.Netparams.link -> network
(** Import a shared {!Siri_core.Netparams} link — the simulation and the
    real server bench read the same constants, so the two Section 5.6
    deployment paths cannot silently diverge. *)

val gigabit_lan : network
(** {!Siri_core.Netparams.gigabit_lan}: 0.2 ms RTT, 1 Gb/s — the paper's
    testbed network. *)

val http_overhead : network
(** {!Siri_core.Netparams.http_overhead}: the Noms HTTP setup, 1 ms per
    request, same bandwidth. *)

type t

val attach :
  Store.t ->
  ?cache_nodes:int ->
  ?failure_rate:float ->
  ?backoff_s:float ->
  ?seed:int ->
  ?sink:Siri_telemetry.Telemetry.sink ->
  network ->
  t
(** Install observers on the store.  [cache_nodes = 0] (or omitted cache)
    disables the client cache.  Only one simulation may be attached to a
    store at a time.

    [failure_rate] (default 0, clamped to [0, 1]) makes each remote request
    attempt fail with that probability; the client retries with exponential
    backoff (base [backoff_s], default 1 ms, doubling per attempt, at most
    10 attempts per request).  Every failed attempt is charged a full round
    trip plus the backoff pause in simulated seconds — flaky links slow the
    simulation down exactly the way they slow a real deployment down.
    Draws are seeded ([seed], default 1) so runs are reproducible.

    With a [sink], every cache hit / miss / eviction and every retried
    request increments [cache.hit] / [cache.miss] / [cache.evict] /
    [remote.retry].  Pairing the same sink with
    {!Siri_store.Store.set_sink} yields the conservation invariant
    [cache.hit + cache.miss = store.get]. *)

val detach : Store.t -> t -> unit

val simulated_seconds : t -> float
(** Accumulated network time since attach (or the last {!reset}),
    including time burned by failed attempts and backoff. *)

val hits : t -> int
val misses : t -> int

val retries : t -> int
(** Failed request attempts that were retried. *)

val reset : t -> unit
(** Zero the counters and simulated time (the cache keeps its contents). *)

val clear_cache : t -> unit
