(** A fixed-capacity LRU set of node hashes — the client-side node cache of
    the Forkbase deployment simulation (Section 5.6.1). *)

type t

val create : capacity:int -> t
(** [capacity] in entries; must be non-negative.  A zero-capacity cache
    never retains anything: every {!touch} reports a miss and stores
    nothing. *)

val capacity : t -> int

val mem : t -> Siri_crypto.Hash.t -> bool
(** Membership test; does NOT refresh recency. *)

val touch : t -> Siri_crypto.Hash.t -> bool
(** Insert-or-refresh; returns [true] if the hash was already present (a
    cache hit).  Evicts the least recently used entry on overflow. *)

val evictions : t -> int
(** Entries evicted by {!touch} since creation.  {!clear} does not reset
    this counter (a clear is not an eviction). *)

val set_sink : t -> Siri_telemetry.Telemetry.sink -> unit
(** Attach a telemetry sink: every subsequent eviction additionally
    increments its [cache.evict] counter. *)

val clear : t -> unit
val size : t -> int
