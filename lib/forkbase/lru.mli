(** A fixed-capacity LRU set of node hashes — the client-side node cache of
    the Forkbase deployment simulation (Section 5.6.1). *)

type t

val create : capacity:int -> t
(** [capacity] in entries; must be positive. *)

val mem : t -> Siri_crypto.Hash.t -> bool
(** Membership test; does NOT refresh recency. *)

val touch : t -> Siri_crypto.Hash.t -> bool
(** Insert-or-refresh; returns [true] if the hash was already present (a
    cache hit).  Evicts the least recently used entry on overflow. *)

val clear : t -> unit
val size : t -> int
