module Store = Siri_store.Store

type network = { rtt_s : float; bandwidth_bps : float }

let gigabit_lan = { rtt_s = 0.0002; bandwidth_bps = 125_000_000.0 }
let http_overhead = { rtt_s = 0.001; bandwidth_bps = 125_000_000.0 }

type t = {
  net : network;
  cache : Lru.t option;
  mutable sim : float;
  mutable hits : int;
  mutable misses : int;
}

let transfer t size = t.net.rtt_s +. (Float.of_int size /. t.net.bandwidth_bps)

let on_get t h size =
  match t.cache with
  | Some cache ->
      if Lru.touch cache h then t.hits <- t.hits + 1
      else begin
        t.misses <- t.misses + 1;
        t.sim <- t.sim +. transfer t size
      end
  | None ->
      t.misses <- t.misses + 1;
      t.sim <- t.sim +. transfer t size

let on_put t h size =
  (* Writes stream to the server; batching amortises the round trip, so we
     charge bandwidth only.  A freshly written node is hot at the client. *)
  t.sim <- t.sim +. (Float.of_int size /. t.net.bandwidth_bps);
  match t.cache with Some cache -> ignore (Lru.touch cache h) | None -> ()

let attach store ?(cache_nodes = 0) net =
  let t =
    { net;
      cache = (if cache_nodes > 0 then Some (Lru.create ~capacity:cache_nodes) else None);
      sim = 0.0;
      hits = 0;
      misses = 0 }
  in
  Store.set_get_observer store (Some (on_get t));
  Store.set_put_observer store (Some (on_put t));
  t

let detach store _t =
  Store.set_get_observer store None;
  Store.set_put_observer store None

let simulated_seconds t = t.sim
let hits t = t.hits
let misses t = t.misses

let reset t =
  t.sim <- 0.0;
  t.hits <- 0;
  t.misses <- 0

let clear_cache t = match t.cache with Some c -> Lru.clear c | None -> ()
