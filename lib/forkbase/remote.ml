module Store = Siri_store.Store
module Rng = Siri_core.Rng
module Hash = Siri_crypto.Hash
module Fault = Siri_fault.Fault
module Telemetry = Siri_telemetry.Telemetry

type network = { rtt_s : float; bandwidth_bps : float }

(* The link parameters live in [Siri_core.Netparams] so the simulation and
   the real server benchmark share one set of constants. *)
let of_link (l : Siri_core.Netparams.link) =
  { rtt_s = l.Siri_core.Netparams.rtt_s;
    bandwidth_bps = l.Siri_core.Netparams.bandwidth_bps }

let gigabit_lan = of_link Siri_core.Netparams.gigabit_lan
let http_overhead = of_link Siri_core.Netparams.http_overhead

type t = {
  net : network;
  cache : Lru.t option;
  failure_rate : float;
  backoff_s : float;
  rng : Rng.t;
  mutable sim : float;
  mutable hits : int;
  mutable misses : int;
  mutable retries : int;
  sink : Telemetry.sink;
}

let transfer t size = t.net.rtt_s +. (Float.of_int size /. t.net.bandwidth_bps)

(* A request attempt may fail (flaky link); [Fault.with_retry] retries
   with exponential backoff, its [sleep] hook charging the dead air to
   simulated time.  Every failed attempt still burned a round trip,
   charged in the probe itself.  After [max_attempts] failures the client
   proceeds anyway: the payload does exist server-side, and an unbounded
   loop at failure rate 1.0 would never terminate. *)
let max_attempts = 10

let fetch t size =
  let probe () =
    if t.failure_rate > 0. && Rng.float t.rng < t.failure_rate then begin
      t.retries <- t.retries + 1;
      Telemetry.incr t.sink "remote.retry";
      t.sim <- t.sim +. t.net.rtt_s;
      raise (Store.Transient Hash.null)
    end
  in
  (match
     Fault.with_retry ~attempts:max_attempts ~backoff_s:t.backoff_s
       ~sleep:(fun d -> t.sim <- t.sim +. d)
       ~sink:t.sink probe
   with
  | Ok () | Error _ -> ());
  t.sim <- t.sim +. transfer t size

let on_get t h size =
  let hit () =
    t.hits <- t.hits + 1;
    Telemetry.incr t.sink "cache.hit"
  in
  let miss () =
    t.misses <- t.misses + 1;
    Telemetry.incr t.sink "cache.miss";
    fetch t size
  in
  match t.cache with
  | Some cache -> if Lru.touch cache h then hit () else miss ()
  | None -> miss ()

let on_put t h size =
  (* Writes stream to the server; batching amortises the round trip, so we
     charge bandwidth only.  A freshly written node is hot at the client. *)
  t.sim <- t.sim +. (Float.of_int size /. t.net.bandwidth_bps);
  match t.cache with Some cache -> ignore (Lru.touch cache h) | None -> ()

let attach store ?(cache_nodes = 0) ?(failure_rate = 0.) ?(backoff_s = 0.001)
    ?(seed = 1) ?(sink = Telemetry.null) net =
  let failure_rate =
    if failure_rate < 0. then 0.
    else if failure_rate > 1. then 1.
    else failure_rate
  in
  let t =
    { net;
      cache =
        (if cache_nodes > 0 then begin
           let c = Lru.create ~capacity:cache_nodes in
           Lru.set_sink c sink;
           Some c
         end
         else None);
      failure_rate;
      backoff_s = (if backoff_s < 0. then 0. else backoff_s);
      rng = Rng.create seed;
      sim = 0.0;
      hits = 0;
      misses = 0;
      retries = 0;
      sink }
  in
  Store.set_get_observer store (Some (on_get t));
  Store.set_put_observer store (Some (on_put t));
  t

let detach store _t =
  Store.set_get_observer store None;
  Store.set_put_observer store None

let simulated_seconds t = t.sim
let hits t = t.hits
let misses t = t.misses
let retries t = t.retries

let reset t =
  t.sim <- 0.0;
  t.hits <- 0;
  t.misses <- 0;
  t.retries <- 0

let clear_cache t = match t.cache with Some c -> Lru.clear c | None -> ()
