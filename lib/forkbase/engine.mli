(** A Forkbase-like versioned storage engine over any SIRI index.

    Data lives in named branches; every write batch creates a commit — an
    immutable, content-addressed object pointing at its parent commit and at
    the index root for that version.  Because commits and index nodes share
    the same content-addressed store, the full history deduplicates at node
    granularity and any commit can be checked out in O(1).

    This is the integration layer of Section 5.6: benchmarks run the same
    key-value workloads through an engine backed by each index kind. *)

open Siri_crypto
open Siri_core
module Store = Siri_store.Store

type t

type commit = {
  id : Hash.t;  (** content hash of the commit object *)
  parent : Hash.t option;
  index_root : Hash.t;
  message : string;
  version : int;  (** 0 for the initial commit of a branch *)
}

val create : empty_index:Generic.t -> t
(** A fresh engine whose ["master"] branch starts at the given (usually
    empty) index instance.  The engine uses the instance's store. *)

val store : t -> Store.t
val branches : t -> string list

val fork : t -> from:string -> string -> unit
(** [fork t ~from name] creates branch [name] at [from]'s head.  O(1): only
    a new head pointer; all data is shared.  Raises [Invalid_argument] if
    [name] exists or [from] does not. *)

val head : t -> string -> commit
val history : t -> string -> commit list
(** Head first, ending at the initial commit. *)

val index : t -> string -> Generic.t
(** The index instance at a branch's head. *)

val checkout : t -> Hash.t -> Generic.t
(** The index instance of any past commit. *)

val commit : t -> branch:string -> message:string -> Kv.op list -> commit
(** Apply a write batch on a branch and advance its head. *)

val commit_bulk :
  t -> branch:string -> message:string -> (Kv.key * Kv.value) list -> commit
(** Load [entries] as one commit.  On a branch still at version 0 this
    goes through the index's [bulk_load] — the canonical bottom-up build
    that the parallel commit pipeline accelerates; on a non-empty branch
    it degrades to a plain put-batch so existing records are kept. *)

val get : t -> branch:string -> Kv.key -> Kv.value option
(** Point lookup at a branch head, through the full read path: the
    version's negative-lookup filter (when one is registered) short-
    circuits definite misses, and the lookup is timed into the tiered
    [read.lookup.hit]/[read.lookup.miss] telemetry. *)

val get_many : t -> branch:string -> Kv.key list -> (Kv.key * Kv.value option) list
(** Batched point lookups at a branch head: filter-rejected keys are
    answered [None] without touching the index, the survivors walk the
    tree once sharing decoded prefix nodes.  One result pair per input
    key, in input order; equivalent to [List.map (fun k -> (k, get t
    ~branch k))]. *)

val scan :
  ?lo:Kv.key -> ?hi:Kv.key -> t -> branch:string -> (Kv.key * Kv.value) Seq.t
(** Streaming ordered read over [[lo, hi)] at a branch head — see
    {!Generic.scan}.  Raises {!Generic.Unsupported} on MBT engines. *)

val range_count :
  ?lo:Kv.key -> ?hi:Kv.key -> ?limit:int -> t -> branch:string -> int
(** Entry count of [[lo, hi)] at a branch head, bounded by [limit] —
    see {!Generic.range_count}. *)

val put : t -> branch:string -> Kv.key -> Kv.value -> commit

val diff_branches : t -> string -> string -> Kv.diff_entry list

val merge_base : t -> string -> string -> commit
(** The nearest common ancestor of two branches' heads in the commit DAG
    (at worst the initial commit, which every branch descends from). *)

val merge_ops :
  t -> into:string -> from:string -> policy:Kv.merge_policy ->
  (Kv.op list, Kv.conflict list) result
(** The resolved, non-conflicting write batch a {!merge_branches} of the
    same arguments would commit on [into] — exposed so the write-ahead
    journal can record a merge as a concrete replayable batch (a
    [Kv.Resolve] closure cannot be serialized).  Does not modify the
    engine. *)

val merge_message : into:string -> from:string -> string
(** The commit message {!merge_branches} uses — replaying a journaled
    merge with this message byte-reproduces the original merge commit. *)

val merge_branches :
  t -> into:string -> from:string -> policy:Kv.merge_policy ->
  (commit, Kv.conflict list) result
(** Three-way merge: changes are computed against {!merge_base}, so a
    record only conflicts when BOTH branches changed it since they diverged
    (to different values, or delete-vs-modify).  Non-conflicting changes
    from both sides are combined; on success the merged version is
    committed on [into].  Under [Fail_on_conflict], a delete-vs-modify
    conflict reports the deleted side as the empty string. *)

(** {2 Optimistic transactions}

    A transaction snapshots a branch head, tracks the keys it reads and
    buffers its writes; {!commit_txn} re-validates the read set against the
    current head (first-committer-wins OCC) and either commits atomically or
    reports the conflicting keys. *)

type txn

val begin_txn : t -> branch:string -> txn
val txn_get : txn -> Kv.key -> Kv.value option
val txn_put : txn -> Kv.key -> Kv.value -> unit
val txn_del : txn -> Kv.key -> unit

val commit_txn :
  txn -> message:string -> (commit, [ `Conflict of Kv.key list ]) result
(** Fails iff another commit changed a key this transaction read (or wrote)
    since it began.  A failed transaction leaves the branch untouched and
    can simply be retried from a fresh {!begin_txn}. *)

(** {2 Persistence}

    An engine persists as two files: the content-addressed store
    ([path], via {!Siri_store.Store.save}) and the branch heads
    ([path ^ ".heads"], one "branch<TAB>commit-hex" line each). *)

val save : ?sync:bool -> t -> string -> unit
(** Both files are written with the crash-safe tmp+fsync+rename protocol
    of {!Siri_store.Store.save} ([sync] defaults to [true]).  The two
    renames are still not atomic {e together} — {!load} degrades
    gracefully on the resulting inconsistency, and the [Siri_wal.Durable]
    layer closes the hole entirely with a single manifest file. *)

val load : empty_index:Generic.t -> string -> t
(** [empty_index] supplies the index kind (and configuration) the engine
    was built with; its store is ignored in favour of the loaded one.
    Stale temp files from interrupted saves are cleaned up.  A head whose
    commit object is absent from (or undecodable in) the store file — the
    signature of a crash between the two {!save} renames — is clamped:
    the branch is dropped and the remaining consistent heads are kept.
    Raises [Failure] on malformed files or when no head survives. *)

val load_checked :
  empty_index:Generic.t -> string -> (t, [ `Malformed of string ]) result
(** {!load} with the untyped exceptions ([Failure], [Sys_error],
    [Invalid_argument], [Wire.Reader.Truncated]) folded into a typed
    error, mirroring {!Siri_store.Store.load_checked}. *)

val save_heads : ?sync:bool -> t -> string -> unit
(** Just the branch-heads TSV, written atomically at [path] — the
    {!save} half a pack-backed durable engine still needs when node
    payloads live in the pack rather than a snapshot file. *)

val load_heads : t -> string -> string list
(** Restore branch heads from the TSV at [path] into [t], resolving each
    commit through [t]'s store (falling through to its cold backend when
    one is attached).  A head whose commit cannot be resolved is clamped
    (dropped); the clamped branch names are returned.  Raises [Failure]
    on malformed files or when no head survives. *)

(** {2 Graceful degradation}

    Read operations against a store with injected (or real) faults: a
    transient fetch failure is retried up to [attempts] times (default 3),
    and any remaining fault surfaces as a typed
    {!Siri_fault.Fault.type-error} instead of an untyped exception aborting
    the caller.  The plain (exception-raising) API above stays available
    for the benchmark hot paths. *)

val get_checked :
  ?attempts:int -> t -> branch:string -> Kv.key ->
  (Kv.value option, Siri_fault.Fault.error) result

val checkout_checked :
  ?attempts:int -> t -> Hash.t ->
  (Generic.t, Siri_fault.Fault.error) result

val history_checked :
  ?attempts:int -> t -> string ->
  (commit list, Siri_fault.Fault.error) result

val commit_checked :
  ?attempts:int -> t -> branch:string -> message:string -> Kv.op list ->
  (commit, Siri_fault.Fault.error) result

(** {2 History management} *)

val verify_history : t -> string -> (int, [ `Tampered of Hash.t ]) result
(** Walk a branch's commit chain re-hashing every commit object and every
    index node reachable from each version: returns the number of commits
    checked, or the first tampered node found. *)

val prune : t -> keep:int -> int
(** Retain only the newest [keep] commits of every branch (at least the
    head), rewrite their parent links to ground the truncated chains, and
    garbage-collect everything unreachable.  Returns the number of store
    nodes reclaimed. *)

val dedup_ratio : t -> float
(** η over the head versions of all branches. *)

val total_versions : t -> int
