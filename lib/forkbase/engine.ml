open Siri_crypto
open Siri_core
module Store = Siri_store.Store
module Wire = Siri_codec.Wire
module Fault = Siri_fault.Fault
module Telemetry = Siri_telemetry.Telemetry
module Bloom = Siri_readpath.Bloom

type commit = {
  id : Hash.t;
  parent : Hash.t option;
  index_root : Hash.t;
  message : string;
  version : int;
}

type t = {
  store : Store.t;
  heads : (string, commit) Hashtbl.t;
  reopen : Hash.t -> Generic.t;
}

let encode_commit ~parent ~index_root ~message ~version =
  let w = Wire.Writer.create () in
  Wire.Writer.u8 w 0xC0;
  (* distinct tag space from index nodes *)
  Wire.Writer.hash w (match parent with Some p -> p | None -> Hash.null);
  Wire.Writer.hash w index_root;
  Wire.Writer.str w message;
  Wire.Writer.varint w version;
  Wire.Writer.contents w

let decode_commit id bytes =
  let r = Wire.Reader.of_string bytes in
  let tag = Wire.Reader.u8 r in
  if tag <> 0xC0 then invalid_arg "Engine: not a commit object";
  let parent =
    let h = Wire.Reader.hash r in
    if Hash.is_null h then None else Some h
  in
  let index_root = Wire.Reader.hash r in
  let message = Wire.Reader.str r in
  let version = Wire.Reader.varint r in
  { id; parent; index_root; message; version }

let store_commit t ~parent ~index_root ~message ~version =
  let bytes = encode_commit ~parent ~index_root ~message ~version in
  let children =
    (* Keep history and data alive under GC roots. *)
    index_root :: (match parent with Some p -> [ p ] | None -> [])
    |> List.filter (fun h -> not (Hash.is_null h))
  in
  let id = Store.put t.store ~children bytes in
  { id; parent; index_root; message; version }

let create ~empty_index =
  let t =
    { store = empty_index.Generic.store;
      heads = Hashtbl.create 8;
      reopen = empty_index.Generic.reopen }
  in
  let initial =
    store_commit t ~parent:None ~index_root:empty_index.Generic.root
      ~message:"initial" ~version:0
  in
  Hashtbl.replace t.heads "master" initial;
  t

let store t = t.store

let branches t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.heads [] |> List.sort compare

let head t name =
  match Hashtbl.find_opt t.heads name with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Engine: no branch %S" name)

let fork t ~from name =
  if Hashtbl.mem t.heads name then
    invalid_arg (Printf.sprintf "Engine.fork: branch %S exists" name);
  Hashtbl.replace t.heads name (head t from)

let history t name =
  let rec walk c acc =
    let acc = c :: acc in
    match c.parent with
    | None -> List.rev acc
    | Some p -> walk (decode_commit p (Store.get t.store p)) acc
  in
  walk (head t name) []

let index t name = t.reopen (head t name).index_root

let checkout t id =
  Telemetry.with_span (Store.sink t.store) "engine.checkout" (fun () ->
      t.reopen (decode_commit id (Store.get t.store id)).index_root)

(* Extend the parent version's negative-lookup filter to the committed
   version: copy it and add the written keys.  Deleted keys stay set in
   the copy, costing only false positives — a filter must never produce a
   false negative.  A parent without a filter whose key set is non-empty
   (only possible for pre-existing histories) gets none either: building
   one from the ops alone would miss the parent's keys. *)
let propagate_filter t ~parent ~parent_known_empty ~root keys =
  if not (Hash.is_null root) then begin
    let base =
      match Store.root_filter t.store parent with
      | Some f -> Some (Bloom.copy f)
      | None ->
          if parent_known_empty then
            Some (Bloom.create ~expected:(max 16 (List.length keys)) ())
          else None
    in
    match base with
    | None -> ()
    | Some f ->
        Bloom.add_all f keys;
        Store.set_root_filter t.store root f
  end

let put_keys ops =
  List.filter_map (function Kv.Put (k, _) -> Some k | Kv.Del _ -> None) ops

let commit t ~branch ~message ops =
  (* The span encloses the index batch, so per-index [<index>.batch] probes
     nest inside [engine.commit] in the trace. *)
  Telemetry.with_span (Store.sink t.store) "engine.commit" (fun () ->
      let h = head t branch in
      let inst = t.reopen h.index_root in
      let inst' = inst.Generic.batch ops in
      propagate_filter t ~parent:h.index_root
        ~parent_known_empty:(h.version = 0) ~root:inst'.Generic.root
        (put_keys ops);
      let c =
        store_commit t ~parent:(Some h.id) ~index_root:inst'.Generic.root
          ~message ~version:(h.version + 1)
      in
      Hashtbl.replace t.heads branch c;
      c)

let commit_bulk t ~branch ~message entries =
  Telemetry.with_span (Store.sink t.store) "engine.commit" (fun () ->
      let h = head t branch in
      let inst = t.reopen h.index_root in
      let inst' =
        (* A bulk load replaces the version's content wholesale; only the
           initial (empty) version can take the fast canonical-build path
           without discarding existing records. *)
        if h.version = 0 then inst.Generic.bulk_load entries
        else inst.Generic.batch (List.map (fun (k, v) -> Kv.Put (k, v)) entries)
      in
      propagate_filter t ~parent:h.index_root
        ~parent_known_empty:(h.version = 0) ~root:inst'.Generic.root
        (List.map fst entries);
      let c =
        store_commit t ~parent:(Some h.id) ~index_root:inst'.Generic.root
          ~message ~version:(h.version + 1)
      in
      Hashtbl.replace t.heads branch c;
      c)

let get t ~branch key = Generic.get (index t branch) key
let get_many t ~branch keys = Generic.get_many (index t branch) keys
let scan ?lo ?hi t ~branch = Generic.scan ?lo ?hi (index t branch)

let range_count ?lo ?hi ?limit t ~branch =
  Generic.range_count ?lo ?hi ?limit (index t branch)
let put t ~branch key value = commit t ~branch ~message:"put" [ Kv.Put (key, value) ]

let diff_branches t a b =
  let ia = index t a in
  ia.Generic.diff (head t b).index_root

let commit_of t id = decode_commit id (Store.get t.store id)

let merge_base t a b =
  (* Every branch descends from the engine's initial commit, so walking A's
     ancestry into a set and scanning B's ancestry always terminates on a
     common commit. *)
  let ancestors = Hash.Table.create 16 in
  let rec collect c =
    Hash.Table.replace ancestors c.id ();
    match c.parent with None -> () | Some p -> collect (commit_of t p)
  in
  collect (head t a);
  let rec find c =
    if Hash.Table.mem ancestors c.id then c
    else
      match c.parent with
      | Some p -> find (commit_of t p)
      | None -> c
  in
  find (head t b)

module Smap = Map.Make (String)

let merge_ops t ~into ~from ~policy =
  let base = merge_base t into from in
  let base_index = t.reopen base.index_root in
  let to_map diffs =
    List.fold_left
      (fun m (d : Kv.diff_entry) -> Smap.add d.key d.right m)
      Smap.empty diffs
  in
  (* d.right is the branch's current state for a key that changed since the
     base ([None] = deleted on that branch). *)
  let left_changes = to_map (base_index.Generic.diff (head t into).index_root) in
  let right_changes = to_map (base_index.Generic.diff (head t from).index_root) in
  let conflicts = ref [] in
  let ops = ref [] in
  Smap.iter
    (fun key right_state ->
      match Smap.find_opt key left_changes with
      | None -> (
          (* Only the right branch touched this record: take its change. *)
          match right_state with
          | Some v -> ops := Kv.Put (key, v) :: !ops
          | None -> ops := Kv.Del key :: !ops)
      | Some left_state ->
          if left_state <> right_state then begin
            (* Both sides changed it since they diverged. *)
            match policy with
            | Kv.Prefer_left -> ()
            | Kv.Prefer_right -> (
                match right_state with
                | Some v -> ops := Kv.Put (key, v) :: !ops
                | None -> ops := Kv.Del key :: !ops)
            | Kv.Resolve f -> (
                match (left_state, right_state) with
                | Some lv, Some rv -> ops := Kv.Put (key, f key lv rv) :: !ops
                | Some _, None -> ops := Kv.Del key :: !ops
                | None, Some v -> ops := Kv.Put (key, v) :: !ops
                | None, None -> ())
            | Kv.Fail_on_conflict ->
                conflicts :=
                  { Kv.key;
                    left_value = Option.value ~default:"" left_state;
                    right_value = Option.value ~default:"" right_state }
                  :: !conflicts
          end)
    right_changes;
  match !conflicts with
  | _ :: _ as cs -> Error (List.rev cs)
  | [] -> Ok (List.rev !ops)

let merge_message ~into ~from = Printf.sprintf "merge %s into %s" from into

let merge_branches t ~into ~from ~policy =
 Telemetry.with_span (Store.sink t.store) "engine.merge" @@ fun () ->
  match merge_ops t ~into ~from ~policy with
  | Error cs -> Error cs
  | Ok ops ->
      let h = head t into in
      let merged = (t.reopen h.index_root).Generic.batch ops in
      let c =
        store_commit t ~parent:(Some h.id) ~index_root:merged.Generic.root
          ~message:(merge_message ~into ~from)
          ~version:(h.version + 1)
      in
      Hashtbl.replace t.heads into c;
      Ok c

(* --- optimistic transactions ---------------------------------------------- *)

type txn = {
  engine : t;
  branch : string;
  snapshot : commit;
  view : Generic.t;
  mutable reads : (Kv.key * Kv.value option) list;
  mutable writes : Kv.op list;  (* newest first *)
}

let begin_txn t ~branch =
  let snapshot = head t branch in
  { engine = t;
    branch;
    snapshot;
    view = t.reopen snapshot.index_root;
    reads = [];
    writes = [] }

let txn_get txn key =
  (* Read-your-writes, then the snapshot. *)
  let rec from_writes = function
    | [] -> None
    | Kv.Put (k, v) :: _ when k = key -> Some (Some v)
    | Kv.Del k :: _ when k = key -> Some None
    | _ :: rest -> from_writes rest
  in
  match from_writes txn.writes with
  | Some answer -> answer
  | None ->
      let v = txn.view.Generic.lookup key in
      txn.reads <- (key, v) :: txn.reads;
      v

let txn_put txn key value = txn.writes <- Kv.Put (key, value) :: txn.writes
let txn_del txn key = txn.writes <- Kv.Del key :: txn.writes

let commit_txn txn ~message =
  let t = txn.engine in
  let current = head t txn.branch in
  let validate () =
    if Hash.equal current.id txn.snapshot.id then []
    else begin
      (* Re-check every key this transaction observed or writes against the
         branch's current version. *)
      let now = t.reopen current.index_root in
      let read_conflicts =
        List.filter_map
          (fun (k, seen) ->
            if now.Generic.lookup k <> seen then Some k else None)
          txn.reads
      in
      let snapshot_view = txn.view in
      let write_conflicts =
        List.filter_map
          (fun op ->
            let k = Kv.key_of_op op in
            if now.Generic.lookup k <> snapshot_view.Generic.lookup k then Some k
            else None)
          txn.writes
      in
      List.sort_uniq String.compare (read_conflicts @ write_conflicts)
    end
  in
  match validate () with
  | _ :: _ as ks -> Error (`Conflict ks)
  | [] ->
      (* Apply writes in submission order (oldest first). *)
      Ok (commit t ~branch:txn.branch ~message (List.rev txn.writes))

(* --- persistence -------------------------------------------------------------- *)

let heads_path path = path ^ ".heads"

let save_heads ?sync t path =
  Store.write_file_atomic ?sync path (fun oc ->
      Hashtbl.iter
        (fun name c -> Printf.fprintf oc "%s\t%s\n" name (Hash.to_hex c.id))
        t.heads)

let save ?sync t path =
  Store.save ?sync t.store path;
  save_heads ?sync t (heads_path path)

let load_heads t path =
  (* Restore branch heads from the TSV at [path], resolving each commit
     through the engine's store (which may fall through to a cold
     backend).  Returns the skipped (ghost) branch names. *)
  ignore (Store.cleanup_stale_tmp path : int);
  let skipped = ref [] in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          match String.index_opt line '\t' with
          | None -> if line <> "" then failwith "Engine.load: malformed heads"
          | Some i ->
              let name = String.sub line 0 i in
              let hex = String.sub line (i + 1) (String.length line - i - 1) in
              let id = Hash.of_hex hex in
              (* The store file and the heads file are written as two
                 separate renames, so a crash between them can leave a head
                 naming a commit the store never received.  Such a branch is
                 unrecoverable from this snapshot alone: clamp it (drop the
                 head) rather than abort the whole load with [Not_found]. *)
              (match decode_commit id (Store.get t.store id) with
              | c -> Hashtbl.replace t.heads name c
              | exception (Not_found | Invalid_argument _ | Wire.Reader.Truncated)
                ->
                  skipped := name :: !skipped)
        done
      with End_of_file -> ());
  if Hashtbl.length t.heads = 0 then
    failwith
      (if !skipped = [] then "Engine.load: no branches"
       else "Engine.load: every head references a commit absent from the store");
  List.rev !skipped

let load ~empty_index path =
  (* Graft the loaded nodes into the caller's (fresh) store so that the
     index kind's closures — which are bound to that store — resolve
     against them, then restore the branch heads. *)
  let loaded = Store.load path in
  let target = empty_index.Generic.store in
  Store.iter_nodes loaded (fun bytes children ->
      ignore (Store.put target ~children bytes));
  Store.reset_counters target;
  let t =
    { store = target;
      heads = Hashtbl.create 8;
      reopen = empty_index.Generic.reopen }
  in
  ignore (load_heads t (heads_path path) : string list);
  t

let load_checked ~empty_index path =
  match load ~empty_index path with
  | t -> Ok t
  | exception Failure msg -> Error (`Malformed msg)
  | exception Sys_error msg -> Error (`Malformed msg)
  | exception Invalid_argument msg -> Error (`Malformed msg)
  | exception Wire.Reader.Truncated ->
      Error (`Malformed "Engine.load: truncated commit object")

(* --- history management ------------------------------------------------------ *)

let verify_history t name =
  let rec walk c count =
    (* The commit object itself. *)
    match Store.get_verified t.store c.id with
    | Error (`Tampered h) -> Error (`Tampered h)
    | Ok _ -> (
        (* Every index node of this version. *)
        let pages = Store.reachable t.store c.index_root in
        let tampered =
          Hash.Set.fold
            (fun h acc ->
              match acc with
              | Some _ -> acc
              | None -> (
                  match Store.get_verified t.store h with
                  | Ok _ -> None
                  | Error (`Tampered h) -> Some h))
            pages None
        in
        match tampered with
        | Some h -> Error (`Tampered h)
        | None -> (
            match c.parent with
            | None -> Ok (count + 1)
            | Some p -> walk (commit_of t p) (count + 1)))
  in
  walk (head t name) 0

let prune t ~keep =
  if keep < 1 then invalid_arg "Engine.prune: keep must be >= 1";
  (* Rebuild each branch's chain from its newest [keep] commits, grounding
     the oldest retained commit (parent = None). *)
  Hashtbl.iter
    (fun name hd ->
      let rec take c n acc =
        if n = 0 then List.rev acc
        else
          match c.parent with
          | None -> List.rev (c :: acc)
          | Some p -> take (commit_of t p) (n - 1) (c :: acc)
      in
      let retained = take hd keep [] in
      (* Oldest first; re-commit with rewritten parents. *)
      let rebuilt =
        List.fold_left
          (fun parent c ->
            let parent_id =
              match (parent : commit option) with
              | None -> None
              | Some p -> Some p.id
            in
            Some
              (store_commit t ~parent:parent_id ~index_root:c.index_root
                 ~message:c.message ~version:c.version))
          None (List.rev retained)
      in
      match rebuilt with
      | Some new_head -> Hashtbl.replace t.heads name new_head
      | None -> ())
    (Hashtbl.copy t.heads);
  let roots = Hashtbl.fold (fun _ c acc -> c.id :: acc) t.heads [] in
  Store.gc t.store ~roots

(* --- graceful degradation ----------------------------------------------------- *)

(* Reads against a faulty store: bounded retries absorb transient failures,
   and whatever remains surfaces as a typed error instead of an untyped
   exception aborting the caller. *)

let get_checked ?attempts t ~branch key =
  Fault.retrying ?attempts (fun () -> get t ~branch key)

let checkout_checked ?attempts t id =
  Fault.retrying ?attempts (fun () -> checkout t id)

let history_checked ?attempts t name =
  Fault.retrying ?attempts (fun () -> history t name)

let commit_checked ?attempts t ~branch ~message ops =
  Fault.retrying ?attempts (fun () -> commit t ~branch ~message ops)

let dedup_ratio t =
  let roots =
    Hashtbl.fold (fun _ c acc -> c.index_root :: acc) t.heads []
    |> List.filter (fun h -> not (Hash.is_null h))
  in
  Dedup.dedup_ratio t.store roots

let total_versions t =
  List.fold_left
    (fun acc name -> acc + List.length (history t name))
    0 (branches t)
