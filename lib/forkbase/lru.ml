open Siri_crypto
module Telemetry = Siri_telemetry.Telemetry

(* Hash table + intrusive doubly-linked recency list. *)

type entry = {
  key : Hash.t;
  mutable prev : entry option;
  mutable next : entry option;
}

type t = {
  capacity : int;
  tbl : entry Hash.Table.t;
  mutable first : entry option;  (* most recent *)
  mutable last : entry option;  (* least recent *)
  evictions : int Atomic.t;  (* stat counter — safe to read from any domain *)
  mutable sink : Telemetry.sink;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: capacity must be non-negative";
  (* The table never holds more than [capacity] entries, and Hashtbl only
     resizes past twice its initial size — so pre-sizing to [capacity]
     already guarantees zero growth churn; the former [2 * capacity]
     doubled the bucket array's footprint for nothing. *)
  { capacity;
    tbl = Hash.Table.create (max 1 capacity);
    first = None;
    last = None;
    evictions = Atomic.make 0;
    sink = Telemetry.null }

let capacity t = t.capacity
let mem t h = Hash.Table.mem t.tbl h
let size t = Hash.Table.length t.tbl
let evictions t = Atomic.get t.evictions
let set_sink t sink = t.sink <- sink

let unlink t e =
  (match e.prev with
  | Some p -> p.next <- e.next
  | None -> t.first <- e.next);
  (match e.next with
  | Some n -> n.prev <- e.prev
  | None -> t.last <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.first;
  e.prev <- None;
  (match t.first with Some f -> f.prev <- Some e | None -> t.last <- Some e);
  t.first <- Some e

let evict_last t =
  match t.last with
  | None -> ()
  | Some e ->
      unlink t e;
      Hash.Table.remove t.tbl e.key;
      Atomic.incr t.evictions;
      Telemetry.incr t.sink "cache.evict"

let touch t h =
  match Hash.Table.find_opt t.tbl h with
  | Some e ->
      unlink t e;
      push_front t e;
      true
  | None ->
      if t.capacity = 0 then false
      else begin
        if Hash.Table.length t.tbl >= t.capacity then evict_last t;
        let e = { key = h; prev = None; next = None } in
        Hash.Table.add t.tbl h e;
        push_front t e;
        false
      end

let clear t =
  Hash.Table.reset t.tbl;
  t.first <- None;
  t.last <- None
