module Hash = Siri_crypto.Hash
module Store = Siri_store.Store
module Rng = Siri_core.Rng
module Wire = Siri_codec.Wire
module Telemetry = Siri_telemetry.Telemetry

(* --- typed error domain ----------------------------------------------------- *)

type error =
  [ `Tampered of Hash.t
  | `Missing of Hash.t
  | `Transient of Hash.t
  | `Malformed of string ]

let error_to_string = function
  | `Tampered h -> Printf.sprintf "tampered node %s" (Hash.to_hex h)
  | `Missing h ->
      if Hash.is_null h then "missing node"
      else Printf.sprintf "missing node %s" (Hash.to_hex h)
  | `Transient h -> Printf.sprintf "transient failure reading %s" (Hash.short h)
  | `Malformed msg -> Printf.sprintf "malformed data: %s" msg

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

let protect f =
  match f () with
  | v -> Ok v
  | exception Store.Tampered h -> Error (`Tampered h)
  | exception Store.Missing h -> Error (`Missing h)
  | exception Store.Transient h -> Error (`Transient h)
  | exception Not_found -> Error (`Missing Hash.null)
  | exception Wire.Reader.Truncated -> Error (`Malformed "truncated input")
  | exception Failure msg -> Error (`Malformed msg)
  | exception Invalid_argument msg -> Error (`Malformed msg)

(* The one retry loop in the system: every transient-fault consumer (the
   forkbase Remote's flaky link, the pack segment reader, the engine's
   [*_checked] accessors) funnels through here, so retry accounting and
   backoff behave identically everywhere. *)
let with_retry ?(attempts = 3) ?(backoff_s = 0.) ?jitter ?sleep
    ?(sink = Telemetry.null) f =
  let attempts = max 1 attempts in
  let sleep =
    match sleep with
    | Some s -> s
    | None -> fun d -> if d > 0. then Unix.sleepf d
  in
  (* Full jitter (AWS-style): each pause is uniform in [0, backoff·2^i)
     instead of exactly backoff·2^i, so a fleet of clients that failed
     together does not retry together — the retry storm a recovering
     server would otherwise face.  Draws come from a seeded splitmix
     generator, so a test can replay the exact schedule. *)
  let jitter_rng = Option.map Rng.create jitter in
  let pause i =
    let cap = backoff_s *. float_of_int (1 lsl i) in
    match jitter_rng with
    | None -> cap
    | Some rng -> cap *. Rng.float rng
  in
  let rec go i =
    match protect f with
    | Error (`Transient _) when i + 1 < attempts ->
        Telemetry.incr sink "retry.attempt";
        sleep (pause i);
        go (i + 1)
    | Error (`Transient _) as r ->
        Telemetry.incr sink "retry.give_up";
        r
    | r -> r
  in
  go 0

let retrying ?attempts f = with_retry ?attempts f

(* --- verified accessors ------------------------------------------------------ *)

let protect_h h f =
  (* Like [protect], but a bare [Not_found] from the store names [h]. *)
  match protect f with
  | Error (`Missing n) when Hash.is_null n -> Error (`Missing h)
  | r -> r

let get_checked store h =
  match protect_h h (fun () -> Store.get store h) with
  | Ok bytes when not (Hash.equal (Hash.of_string bytes) h) ->
      Error (`Tampered h)
  | r -> r

let children_checked store h = protect_h h (fun () -> Store.children store h)
let size_checked store h = protect_h h (fun () -> Store.size_of store h)

(* --- fault plans ------------------------------------------------------------- *)

type plan = {
  seed : int;
  bit_flip : float;
  truncate : float;
  drop : float;
  transient : float;
  latency_s : float;
  verify_reads : bool;
}

let clamp p = if p < 0. then 0. else if p > 1. then 1. else p

let plan ?(bit_flip = 0.) ?(truncate = 0.) ?(drop = 0.) ?(transient = 0.)
    ?(latency_s = 0.) ?(verify_reads = true) ~seed () =
  { seed;
    bit_flip = clamp bit_flip;
    truncate = clamp truncate;
    drop = clamp drop;
    transient = clamp transient;
    latency_s = (if latency_s < 0. then 0. else latency_s);
    verify_reads }

type armed = {
  plan : plan;
  target : Store.t;
  gate_rng : Rng.t;  (* per-read transient draws *)
  corrupted : Hash.t list;
  dropped_set : Hash.Set.t;
  mutable transients : int;
  mutable reads : int;
  mutable latency : float;
}

let arm plan store =
  (* Victim selection must not depend on hash-table iteration order: collect
     every stored node's hash, sort, then walk with a seeded generator. *)
  let hashes = ref [] in
  Store.iter_nodes store (fun bytes _ ->
      hashes := Hash.of_string bytes :: !hashes);
  let hashes = List.sort Hash.compare !hashes in
  let rng = Rng.create plan.seed in
  let corrupted = ref [] in
  let dropped = ref Hash.Set.empty in
  List.iter
    (fun h ->
      let r = Rng.float rng in
      if r < plan.bit_flip then begin
        Store.corrupt_at store h ~pos:(Rng.int rng 1_000_003);
        corrupted := h :: !corrupted
      end
      else if r < plan.bit_flip +. plan.truncate then begin
        let len = Store.size_of store h in
        Store.truncate_node store h ~keep:(len / 2);
        corrupted := h :: !corrupted
      end
      else if r < plan.bit_flip +. plan.truncate +. plan.drop then
        dropped := Hash.Set.add h !dropped)
    hashes;
  let a =
    { plan;
      target = store;
      gate_rng = Rng.split rng;
      corrupted = List.sort Hash.compare !corrupted;
      dropped_set = !dropped;
      transients = 0;
      reads = 0;
      latency = 0. }
  in
  let gate h bytes =
    a.reads <- a.reads + 1;
    (* Latency is charged up front: a read that then fails still burned
       its round trip. *)
    a.latency <- a.latency +. a.plan.latency_s;
    if a.plan.transient > 0. && Rng.float a.gate_rng < a.plan.transient
    then begin
      a.transients <- a.transients + 1;
      raise (Store.Transient h)
    end;
    if Hash.Set.mem h a.dropped_set then raise (Store.Missing h);
    if a.plan.verify_reads && not (Hash.equal (Hash.of_string bytes) h) then
      raise (Store.Tampered h)
  in
  Store.set_read_gate store (Some gate);
  a

let flip_blob ~seed ~rate blob =
  let rate = clamp rate in
  let rng = Rng.create seed in
  let b = Bytes.of_string blob in
  let offsets = ref [] in
  for i = 0 to Bytes.length b - 1 do
    if Rng.float rng < rate then begin
      let bit = Rng.int rng 8 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      offsets := i :: !offsets
    end
  done;
  (Bytes.unsafe_to_string b, List.rev !offsets)

(* --- segment I/O gates -------------------------------------------------------- *)

(* Raw-read fault injection for file-backed storage (pack segments): the
   gate sits between the pread and the checksum verification, so an
   injected bit flip or short read must be caught by the frame digest and
   surface as [`Tampered], while transients exercise the retry path. *)

type io_gate = {
  io_plan : plan;
  io_rng : Rng.t;
  mutable io_transients : int;
  mutable io_flips : int;
  mutable io_truncations : int;
}

let io_gate plan =
  { io_plan = plan;
    io_rng = Rng.create plan.seed;
    io_transients = 0;
    io_flips = 0;
    io_truncations = 0 }

let gate_read g h bytes =
  let p = g.io_plan in
  let r = Rng.float g.io_rng in
  if p.transient > 0. && r < p.transient then begin
    g.io_transients <- g.io_transients + 1;
    raise (Store.Transient h)
  end
  else if r < p.transient +. p.bit_flip then begin
    g.io_flips <- g.io_flips + 1;
    if String.length bytes = 0 then bytes
    else begin
      let b = Bytes.of_string bytes in
      let i = Rng.int g.io_rng (Bytes.length b) in
      let bit = Rng.int g.io_rng 8 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      Bytes.unsafe_to_string b
    end
  end
  else if r < p.transient +. p.bit_flip +. p.truncate then begin
    g.io_truncations <- g.io_truncations + 1;
    String.sub bytes 0 (String.length bytes / 2)
  end
  else bytes

let io_transients g = g.io_transients
let io_flips g = g.io_flips
let io_truncations g = g.io_truncations

let disarm a = Store.set_read_gate a.target None
let store a = a.target
let corrupted a = a.corrupted
let dropped a = Hash.Set.elements a.dropped_set
let injected_transients a = a.transients
let reads a = a.reads
let simulated_latency a = a.latency
