(** Deterministic fault injection and the typed error domain.

    The paper's central robustness claim is that SIRI structures are
    tamper-evident: every node is addressed by the hash of its bytes, so any
    page corruption is detectable on read (§2, §5.7).  This module makes
    that claim testable at system scale.  A seeded {!plan} armed on a
    {!Siri_store.Store.t} injects

    - {b bit flips} and {b truncations} — persistent payload damage, found
      by [Store.scrub] and surfaced as [`Tampered] by verified reads;
    - {b drops} — nodes that vanish from the read path ([`Missing]);
    - {b transient failures} — flaky-link reads that succeed on retry
      ([`Transient]);
    - {b latency} — accounted in simulated seconds, never slept.

    All randomness flows from the plan's seed through a splitmix generator,
    so a chaos run is exactly reproducible.

    The second half of the module is the {b typed error domain} unifying the
    untyped exceptions that used to leak out of the stack ([Not_found],
    [Failure], [Invalid_argument], [Wire.Reader.Truncated]): {!protect} runs
    any operation and folds every fault into {!type-error}; {!retrying} adds
    bounded retries for transient faults; [*_checked] are verified,
    [result]-returning store accessors.  The exception API stays available
    for hot benchmark paths. *)

module Hash = Siri_crypto.Hash
module Store = Siri_store.Store

(** {1 Typed error domain} *)

type error =
  [ `Tampered of Hash.t  (** payload fails hash verification *)
  | `Missing of Hash.t
    (** node absent ({!Hash.null} when the failing hash is unknown, e.g.
        mapped from a bare [Not_found]) *)
  | `Transient of Hash.t  (** transient read failure; retryable *)
  | `Malformed of string  (** undecodable bytes or file *) ]

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val protect : (unit -> 'a) -> ('a, error) result
(** Run an operation, folding typed store faults ({!Store.Tampered},
    {!Store.Missing}, {!Store.Transient}) and the legacy untyped leaks
    ([Not_found], [Wire.Reader.Truncated], [Failure], [Invalid_argument])
    into {!type-error}.  Any other exception propagates. *)

val with_retry :
  ?attempts:int ->
  ?backoff_s:float ->
  ?jitter:int ->
  ?sleep:(float -> unit) ->
  ?sink:Siri_telemetry.Telemetry.sink ->
  (unit -> 'a) ->
  ('a, error) result
(** The one retry loop in the system.  Like {!protect}, but a [`Transient]
    failure is retried up to [attempts] times total (default 3, clamped to
    at least 1), sleeping [backoff_s * 2^i] before retry [i+1] (default
    backoff [0.], i.e. immediate).  With [jitter] (a seed), each pause is
    instead {e full-jitter}: uniform in [0, backoff_s * 2^i), drawn from a
    splitmix generator seeded with [jitter] — synchronized clients spread
    their retries out instead of storming a recovering server in lockstep,
    and the exact schedule replays deterministically from the seed.
    [sleep] overrides the wall-clock sleep — deployment simulations pass a
    function that charges simulated seconds instead.  Each retry
    increments the [retry.attempt] counter on [sink] and a final surrender
    increments [retry.give_up] (default sink:
    {!Siri_telemetry.Telemetry.null}).  Non-transient results return
    immediately. *)

val retrying :
  ?attempts:int -> (unit -> 'a) -> ('a, error) result
(** [with_retry ?attempts] with defaults — kept as the short name for call
    sites that need no backoff or telemetry. *)

(** {1 Verified store accessors} *)

val get_checked : Store.t -> Hash.t -> (string, error) result
(** Fetch and re-hash: returns [`Tampered] when the payload does not hash
    to its key, [`Missing]/[`Transient] on (injected or real) absence. *)

val children_checked : Store.t -> Hash.t -> (Hash.t list, error) result
val size_checked : Store.t -> Hash.t -> (int, error) result

(** {1 Fault plans} *)

type plan = private {
  seed : int;
  bit_flip : float;  (** per-node probability of a persistent bit flip *)
  truncate : float;  (** per-node probability of payload truncation *)
  drop : float;  (** per-node probability of vanishing from reads *)
  transient : float;  (** per-read probability of a transient failure *)
  latency_s : float;  (** simulated seconds charged per successful read *)
  verify_reads : bool;
      (** re-hash every gated read and raise {!Store.Tampered} on mismatch
          (the Merkle verified-read mode; default [true]) *)
}

val plan :
  ?bit_flip:float ->
  ?truncate:float ->
  ?drop:float ->
  ?transient:float ->
  ?latency_s:float ->
  ?verify_reads:bool ->
  seed:int ->
  unit ->
  plan
(** All rates default to [0.]; probabilities are clamped to [0, 1]. *)

type armed
(** A store with a plan armed on it: persistent corruptions applied, read
    gate installed. *)

val arm : plan -> Store.t -> armed
(** Select victims among the nodes currently stored (deterministically from
    the seed), apply the persistent corruptions, and install the read gate
    for drop/transient/latency/verification behaviour.  Nodes written after
    arming are not corrupted but still pass through the gate.  Only one
    plan may be armed on a store at a time. *)

val flip_blob : seed:int -> rate:float -> string -> string * int list
(** Plan-style damage for a raw byte blob (e.g. a write-ahead journal
    file): every byte is independently hit with probability [rate]
    (clamped to [0, 1]); a hit flips one seeded-random bit.  Returns the
    damaged copy and the hit offsets in increasing order.  Deterministic
    in [seed] — the same blob and seed reproduce the same damage, so a
    crash-simulation failure replays exactly. *)

(** {1 Segment I/O gates}

    Raw-read fault injection for file-backed storage (pack segments).  An
    {!io_gate} reuses the {!plan} rates but applies them to raw byte reads
    rather than store nodes: [transient] raises {!Store.Transient} (to be
    absorbed by {!with_retry}), [bit_flip] flips one seeded-random bit in
    the returned bytes, [truncate] halves them.  The gate sits {e between}
    the [pread] and the checksum verification, so injected damage must be
    caught by the frame digest and surface as [`Tampered] — never as a
    wrong read. *)

type io_gate

val io_gate : plan -> io_gate
(** Fresh gate state seeded from [plan.seed]; draws are deterministic in
    the read sequence. *)

val gate_read : io_gate -> Hash.t -> string -> string
(** [gate_read g h bytes] passes [bytes] through the gate: returns them
    unchanged, damaged (flip/truncate), or raises [Store.Transient h]. *)

val io_transients : io_gate -> int
val io_flips : io_gate -> int

val io_truncations : io_gate -> int
(** Injection counters, in the order transient / bit-flip / truncation. *)

val disarm : armed -> unit
(** Remove the read gate.  Persistent corruptions remain (use
    [Store.repair] to heal them). *)

val store : armed -> Store.t

val corrupted : armed -> Hash.t list
(** Hashes whose payloads were persistently damaged (bit flips and
    truncations), sorted — exactly the set [Store.scrub] must report. *)

val dropped : armed -> Hash.t list
(** Hashes that vanish from the read path, sorted. *)

val injected_transients : armed -> int
(** Transient failures raised so far. *)

val reads : armed -> int
(** Reads that passed through the gate. *)

val simulated_latency : armed -> float
(** Accumulated injected latency in simulated seconds. *)
