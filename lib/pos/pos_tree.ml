open Siri_crypto
open Siri_core
module Store = Siri_store.Store
module Wire = Siri_codec.Wire
module Telemetry = Siri_telemetry.Telemetry
module Chunker = Siri_chunk.Chunker

type internal_rule =
  | By_child_hash of { bits : int; min_items : int; max_items : int }
  | By_rolling of Chunker.config

type config = {
  leaf : Chunker.config;
  internal : internal_rule;
  non_recursively_identical : bool;
  local_split : bool;
      (* Non-structurally-invariant mode (Section 5.5.1): updates stay
         inside the touched node, which splits on overflow but never
         re-merges with its successors — so boundaries depend on update
         history, like a B+-tree. *)
}

let config ?(leaf_target = 1024) ?(internal_bits = 5) ?internal
    ?(non_recursively_identical = false) () =
  let internal =
    match internal with
    | Some rule -> rule
    | None ->
        By_child_hash
          { bits = internal_bits; min_items = 2; max_items = 64 * (1 lsl internal_bits) }
  in
  { leaf = Chunker.config_for_leaf_size leaf_target;
    internal;
    non_recursively_identical;
    local_split = false }

let config_prolly ?(leaf_target = 4096) ?(internal_target = 4096) () =
  { leaf = Chunker.config_for_leaf_size leaf_target;
    internal = By_rolling (Chunker.config_for_leaf_size internal_target);
    non_recursively_identical = false;
    local_split = false }

let config_non_structurally_invariant ?(leaf_target = 1024) () =
  (* Pattern so rare (2^22 bytes expected) that almost every boundary is a
     forced split at the maximum size; combined with local (in-node) update
     handling, split points depend on the update history. *)
  { leaf = Chunker.config ~pattern_bits:22 ~max_size:leaf_target ();
    internal = By_child_hash { bits = 5; min_items = 2; max_items = 32 };
    non_recursively_identical = false;
    local_split = true }

let config_non_recursively_identical ?(leaf_target = 1024) () =
  { (config ~leaf_target ()) with non_recursively_identical = true }

type t = { store : Store.t; cfg : config; root : Hash.t; salt : string }

let empty store cfg = { store; cfg; root = Hash.null; salt = "" }
let of_root store cfg root = { store; cfg; root; salt = "" }
let root t = t.root
let store t = t.store
let conf t = t.cfg

(* Fresh salts for the non-recursively-identical ablation: every write makes
   byte-distinct nodes, so the content-addressed store can never share.
   Atomic so concurrent builds never mint the same salt. *)
let salt_counter = Atomic.make 0

let next_salt () = Printf.sprintf "v%d" (Atomic.fetch_and_add salt_counter 1 + 1)

(* --- node codec ---------------------------------------------------------- *)

let tag_leaf = 0
let tag_internal = 1

type node =
  | Leaf of (Kv.key * Kv.value) array
  | Internal of int * (Kv.key * Hash.t) array  (* height >= 1, split keys *)

type Siri_readpath.Node_cache.repr += Cached of node

let encode_leaf salt entries =
  let w = Wire.Writer.create ~capacity:1024 () in
  Wire.Writer.u8 w tag_leaf;
  Wire.Writer.str w salt;
  Wire.Writer.varint w (Array.length entries);
  Array.iter
    (fun (k, v) ->
      Wire.Writer.str w k;
      Wire.Writer.str w v)
    entries;
  Wire.Writer.contents w

let encode_internal salt level refs =
  let w = Wire.Writer.create ~capacity:1024 () in
  Wire.Writer.u8 w tag_internal;
  Wire.Writer.str w salt;
  Wire.Writer.u8 w level;
  Wire.Writer.varint w (Array.length refs);
  Array.iter
    (fun (k, h) ->
      Wire.Writer.str w k;
      Wire.Writer.hash w h)
    refs;
  Wire.Writer.contents w

let decode bytes =
  let r = Wire.Reader.of_string bytes in
  let tag = Wire.Reader.u8 r in
  let _salt = Wire.Reader.str r in
  if tag = tag_leaf then
    Leaf
      (Array.init (Wire.Reader.varint r) (fun _ ->
           let k = Wire.Reader.str r in
           let v = Wire.Reader.str r in
           (k, v)))
  else begin
    let level = Wire.Reader.u8 r in
    Internal
      ( level,
        Array.init (Wire.Reader.varint r) (fun _ ->
            let k = Wire.Reader.str r in
            let h = Wire.Reader.hash r in
            (k, h)) )
  end

(* Read through the store's decoded-node cache.  Decoded entry/ref arrays
   are never mutated (writes rebuild via the streaming rebuilder), so
   sharing one decoding across lookups is safe.  The salt dropped by
   [decode] is irrelevant to reads. *)
let get store h =
  let cache = Store.cache store in
  if not (Siri_readpath.Node_cache.enabled cache) then
    decode (Store.get store h)
  else
    match Siri_readpath.Node_cache.find cache h with
    | Some (Cached node) -> node
    | _ ->
        let bytes = Store.get store h in
        let node = decode bytes in
        Siri_readpath.Node_cache.insert cache h ~bytes:(String.length bytes)
          (Cached node);
        node

(* Serialized form of a record as fed to the rolling hash. *)
let ser_entry k v =
  let w = Wire.Writer.create ~capacity:(String.length k + String.length v + 8) () in
  Wire.Writer.str w k;
  Wire.Writer.str w v;
  Wire.Writer.contents w

let ser_ref k h =
  let w = Wire.Writer.create ~capacity:(String.length k + 40) () in
  Wire.Writer.str w k;
  Wire.Writer.hash w h;
  Wire.Writer.contents w

(* --- streaming rebuilder -------------------------------------------------- *)

(* Stream 0 carries records; stream l>=1 carries refs to height-(l-1) nodes.
   Chunk boundaries are decided as items arrive; a finished chunk becomes a
   node whose ref is pushed onto the stream above.  Reusing a clean subtree
   of height l is legal exactly when streams 0..l are at a boundary (all
   pendings empty, rolling states reset). *)

type item = Ent of Kv.key * Kv.value | Ref of Kv.key * Hash.t

type stream = {
  chunker : Chunker.t option;  (* stream 0, or internal By_rolling *)
  mutable pending : item list;  (* reversed *)
  mutable pending_count : int;
  mutable total : int;
}

type rebuilder = {
  rstore : Store.t;
  rcfg : config;
  rsalt : string;
  mutable streams : stream array;
}

let new_stream cfg lvl =
  let chunker =
    if lvl = 0 then Some (Chunker.create cfg.leaf)
    else
      match cfg.internal with
      | By_rolling c -> Some (Chunker.create c)
      | By_child_hash _ -> None
  in
  { chunker; pending = []; pending_count = 0; total = 0 }

let rebuilder store cfg salt =
  { rstore = store; rcfg = cfg; rsalt = salt; streams = [||] }

let stream r lvl =
  let n = Array.length r.streams in
  if lvl >= n then begin
    let bigger =
      Array.init (lvl + 1) (fun i ->
          if i < n then r.streams.(i) else new_stream r.rcfg i)
    in
    r.streams <- bigger
  end;
  r.streams.(lvl)

let item_key = function Ent (k, _) -> k | Ref (k, _) -> k

let make_node r lvl items =
  (* [items] in order; returns the ref of the created node. *)
  let last_key = item_key (List.nth items (List.length items - 1)) in
  let h =
    if lvl = 0 then
      let entries =
        Array.of_list
          (List.map (function Ent (k, v) -> (k, v) | Ref _ -> assert false) items)
      in
      Store.put r.rstore (encode_leaf r.rsalt entries)
    else
      let refs =
        Array.of_list
          (List.map (function Ref (k, h) -> (k, h) | Ent _ -> assert false) items)
      in
      Store.put r.rstore
        ~children:(List.map (fun (_, h) -> h) (Array.to_list refs))
        (encode_internal r.rsalt lvl refs)
  in
  (last_key, h)

let rec add_item r lvl item =
  let s = stream r lvl in
  s.pending <- item :: s.pending;
  s.pending_count <- s.pending_count + 1;
  s.total <- s.total + 1;
  let boundary =
    match (lvl, r.rcfg.internal, item) with
    | 0, _, Ent (k, v) -> (
        match s.chunker with
        | Some c -> Chunker.feed c (ser_entry k v)
        | None -> assert false)
    | _, By_rolling _, Ref (k, h) -> (
        match s.chunker with
        | Some c ->
            (* Never cut a single-ref chunk: a chain of one-child internal
               nodes would grow the tree height unboundedly. *)
            let fired = Chunker.feed c (ser_ref k h) in
            fired && s.pending_count >= 2
        | None -> assert false)
    | _, By_child_hash { bits; min_items; max_items }, Ref (_, h) ->
        if s.pending_count >= max_items then true
        else
          s.pending_count >= min_items
          && Chunker.hash_boundary
               (Chunker.config ~pattern_bits:bits ()) h
    | _ -> assert false
  in
  if boundary then flush_stream r lvl

and flush_stream r lvl =
  let s = stream r lvl in
  if s.pending_count > 0 then begin
    let items = List.rev s.pending in
    s.pending <- [];
    s.pending_count <- 0;
    (match s.chunker with Some c -> Chunker.reset c | None -> ());
    let k, h = make_node r lvl items in
    add_item r (lvl + 1) (Ref (k, h))
  end

let add_entry r k v = add_item r 0 (Ent (k, v))

(* A clean subtree of height [h] can be reused iff all streams up to and
   including [h] are at a boundary. *)
let can_reuse r height =
  let rec check lvl =
    if lvl > height then true
    else if lvl >= Array.length r.streams then true
    else r.streams.(lvl).pending_count = 0 && check (lvl + 1)
  in
  check 0

let finish r =
  let above_active lvl =
    let rec check l =
      l < Array.length r.streams
      && (r.streams.(l).total > 0 || check (l + 1))
    in
    check (lvl + 1)
  in
  let rec loop lvl =
    let s = stream r lvl in
    if lvl >= 1 && s.total = 1 && s.pending_count = 1 && not (above_active lvl)
    then
      match s.pending with
      | [ Ref (_, h) ] -> h
      | _ -> assert false
    else begin
      flush_stream r lvl;
      if s.total = 0 && not (above_active lvl) then Hash.null else loop (lvl + 1)
    end
  in
  loop 0

(* --- batch update ---------------------------------------------------------- *)

(* Split sorted ops among children: child i takes ops with key <= its split
   key; the last child also takes everything beyond the largest split key. *)
let partition_ops refs ops =
  let n = Array.length refs in
  let buckets = Array.make n [] in
  let rec go i ops =
    match ops with
    | [] -> ()
    | op :: rest ->
        let key = Kv.key_of_op op in
        let rec advance i =
          if i >= n - 1 then n - 1
          else if String.compare key (fst refs.(i)) <= 0 then i
          else advance (i + 1)
        in
        let i = advance i in
        buckets.(i) <- op :: buckets.(i);
        go i rest
  in
  go 0 ops;
  Array.map List.rev buckets

let rec emit r h height ops ~reuse =
  if ops = [] && reuse && can_reuse r height then begin
    (* Whole subtree is clean and chunking is aligned: reuse by ref.  The
       subtree's max key is needed by the parent; it is the key of its last
       item, which equals the split key the parent stored — the caller passes
       it via [h]'s ref; here we only have the hash, so fetch lazily. *)
    match get r.rstore h with
    | Leaf entries when Array.length entries = 0 -> ()
    | Leaf entries ->
        add_item r (height + 1) (Ref (fst entries.(Array.length entries - 1), h))
    | Internal (_, refs) ->
        add_item r (height + 1) (Ref (fst refs.(Array.length refs - 1), h))
  end
  else
    match get r.rstore h with
    | Leaf entries ->
        let merged = Kv.apply_sorted (Array.to_list entries) ops in
        List.iter (fun (k, v) -> add_entry r k v) merged;
        (* Local mode: contain the edit within this node's span — cut here
           instead of re-chunking into the following nodes. *)
        if r.rcfg.local_split then flush_stream r 0
    | Internal (lvl, refs) ->
        let buckets = partition_ops refs ops in
        Array.iteri
          (fun i (key, child) ->
            if buckets.(i) = [] && reuse && can_reuse r (lvl - 1) then
              add_item r lvl (Ref (key, child))
            else emit r child (lvl - 1) buckets.(i) ~reuse)
          refs

let rebuild t ops salt ~reuse =
  let r = rebuilder t.store t.cfg salt in
  (if Hash.is_null t.root then
     List.iter (fun (k, v) -> add_entry r k v) (Kv.apply_sorted [] ops)
   else emit r t.root max_int ops ~reuse);
  { t with root = finish r; salt }

let batch t ops =
  let ops = Kv.sort_ops ops in
  if ops = [] then t
  else if t.cfg.non_recursively_identical then
    (* Fresh salt: every node of the new version is byte-distinct, and the
       whole tree must be rewritten. *)
    rebuild t ops (next_salt ()) ~reuse:false
  else rebuild t ops t.salt ~reuse:true

let insert t k v = batch t [ Kv.Put (k, v) ]
let remove t k = batch t [ Kv.Del k ]

let of_entries store cfg entries =
  batch (empty store cfg) (List.map (fun (k, v) -> Kv.Put (k, v)) entries)

(* --- parallel bulk load ---------------------------------------------------- *)

(* Chunk boundaries depend only on the item sequence (the tree is
   history-independent for a full build), so a bulk load can be split into
   two passes per level: a sequential scan that replays the streaming
   boundary rules to find the cut points, then a parallel pass encoding
   and hashing each chunk on the pool.  The scan is a rolling hash over
   the serialized items — an order of magnitude cheaper than the SHA-256
   work it unlocks. *)

module Pool = Siri_parallel.Pool

(* Cut points for the record stream (level 0): a chunk ends exactly where
   [add_item 0] would fire.  [Chunker.feed] resets its own state when it
   fires, matching the streaming rebuilder. *)
let leaf_segments cfg entries =
  let n = Array.length entries in
  let ch = Chunker.create cfg.leaf in
  let segs = ref [] and lo = ref 0 in
  Array.iteri
    (fun i (k, v) ->
      if Chunker.feed ch (ser_entry k v) then begin
        segs := (!lo, i + 1) :: !segs;
        lo := i + 1
      end)
    entries;
  if !lo < n then segs := (!lo, n) :: !segs;
  Array.of_list (List.rev !segs)

(* Cut points for a ref stream (level >= 1), mirroring [add_item]'s
   internal-rule cases including the never-cut-a-single-ref guard. *)
let ref_segments cfg refs =
  let n = Array.length refs in
  let segs = ref [] and lo = ref 0 in
  (match cfg.internal with
  | By_rolling c ->
      let ch = Chunker.create c in
      Array.iteri
        (fun i (k, h) ->
          let fired = Chunker.feed ch (ser_ref k h) in
          if fired && i + 1 - !lo >= 2 then begin
            segs := (!lo, i + 1) :: !segs;
            lo := i + 1
          end)
        refs
  | By_child_hash { bits; min_items; max_items } ->
      let c = Chunker.config ~pattern_bits:bits () in
      Array.iteri
        (fun i (_, h) ->
          let pending = i + 1 - !lo in
          if
            pending >= max_items
            || (pending >= min_items && Chunker.hash_boundary c h)
          then begin
            segs := (!lo, i + 1) :: !segs;
            lo := i + 1
          end)
        refs);
  if !lo < n then segs := (!lo, n) :: !segs;
  Array.of_list (List.rev !segs)

let of_sorted ?pool store cfg entries =
  let entries =
    Kv.apply_sorted []
      (Kv.sort_ops (List.map (fun (k, v) -> Kv.Put (k, v)) entries))
  in
  match entries with
  | [] -> empty store cfg
  | _ ->
      let pool = match pool with Some p -> p | None -> Pool.sequential in
      let salt = if cfg.non_recursively_identical then next_salt () else "" in
      let sink = Store.sink store in
      (* Stage one level on the pool: quiet hashing in the workers, then
         observer replay + batched install in segment order on the
         coordinator — the same digest/put sequence as the streaming
         rebuilder emits for these nodes. *)
      let par_stage segs stage_of =
        let staged =
          Telemetry.with_span sink "commit.parallel" (fun () ->
              Pool.map pool stage_of segs)
        in
        let as_list = Array.to_list (Array.map snd staged) in
        Store.note_staged as_list;
        Store.put_staged store as_list;
        if Telemetry.enabled sink then begin
          Telemetry.incr sink "parallel.maps";
          Telemetry.incr sink ~by:(Array.length segs) "parallel.tasks";
          Telemetry.incr sink ~by:(Array.length segs) "parallel.nodes"
        end;
        Array.map (fun (k, s) -> (k, s.Store.digest)) staged
      in
      let arr = Array.of_list entries in
      let leaves =
        par_stage (leaf_segments cfg arr) (fun (lo, hi) ->
            let slice = Array.sub arr lo (hi - lo) in
            (fst slice.(hi - lo - 1), Store.stage_quiet (encode_leaf salt slice)))
      in
      let rec build lvl refs =
        if Array.length refs = 1 then snd refs.(0)
        else
          let nodes =
            par_stage (ref_segments cfg refs) (fun (lo, hi) ->
                let slice = Array.sub refs lo (hi - lo) in
                ( fst slice.(hi - lo - 1),
                  Store.stage_quiet
                    ~children:(Array.to_list (Array.map snd slice))
                    (encode_internal salt lvl slice) ))
          in
          build (lvl + 1) nodes
      in
      { store; cfg; root = build 1 leaves; salt }

let insert_many ?pool t entries =
  if Hash.is_null t.root then of_sorted ?pool t.store t.cfg entries
  else batch t (List.map (fun (k, v) -> Kv.Put (k, v)) entries)

(* --- queries ----------------------------------------------------------------- *)

(* First index in [refs] whose split key is >= key, or none. *)
let child_for refs key =
  let n = Array.length refs in
  let rec bsearch lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if String.compare (fst refs.(mid)) key < 0 then bsearch (mid + 1) hi
      else bsearch lo mid
  in
  let i = bsearch 0 n in
  if i = n then None else Some i

let find_entry entries key =
  let n = Array.length entries in
  let rec bsearch lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let k, v = entries.(mid) in
      match String.compare key k with
      | 0 -> Some v
      | c when c < 0 -> bsearch lo mid
      | _ -> bsearch (mid + 1) hi
  in
  bsearch 0 n

let lookup_count t key =
  let rec go h visited =
    match get t.store h with
    | Leaf entries -> (find_entry entries key, visited + 1)
    | Internal (_, refs) -> (
        match child_for refs key with
        | None -> (None, visited + 1)
        | Some i -> go (snd refs.(i)) (visited + 1))
  in
  if Hash.is_null t.root then (None, 0) else go t.root 0

let lookup t key = fst (lookup_count t key)
let path_length t key = snd (lookup_count t key)

(* Batched point lookups: distinct sorted keys walk the tree once.  At an
   internal node the still-alive slice is split at the child separators
   (keys <= a split key descend into that child), so every shared prefix
   node is fetched and decoded once for the whole batch. *)
(* The walk itself, parameterized by node fetch so the same traversal
   serves lookups (cache-aware [get]), proving ([Multiproof.recorder]) and
   verifying ([Multiproof.consumer]). *)
let walk_many ~fetch root arr found =
    let rec go h lo hi =
      match fetch h with
      | Leaf entries ->
          for i = lo to hi - 1 do
            match find_entry entries arr.(i) with
            | Some v -> Hashtbl.replace found arr.(i) v
            | None -> ()
          done
      | Internal (_, refs) ->
          let i = ref lo in
          while !i < hi do
            match child_for refs arr.(!i) with
            | None ->
                (* Beyond the last split key; so is every later key: this
                   node witnesses their absence. *)
                i := hi
            | Some c ->
                let split = fst refs.(c) in
                let j = ref (!i + 1) in
                while !j < hi && String.compare arr.(!j) split <= 0 do
                  incr j
                done;
                go (snd refs.(c)) !i !j;
                i := !j
          done
    in
    go root 0 (Array.length arr)

let get_many t keys =
  if keys = [] then []
  else begin
    let found = Hashtbl.create (List.length keys) in
    let arr = Array.of_list (List.sort_uniq String.compare keys) in
    if not (Hash.is_null t.root) then
      walk_many ~fetch:(get t.store) t.root arr found;
    List.map (fun k -> (k, Hashtbl.find_opt found k)) keys
  end

let height t =
  if Hash.is_null t.root then 0
  else
    match get t.store t.root with
    | Leaf _ -> 1
    | Internal (lvl, _) -> lvl + 1

let iter t f =
  let rec go h =
    match get t.store h with
    | Leaf entries -> Array.iter (fun (k, v) -> f k v) entries
    | Internal (_, refs) -> Array.iter (fun (_, c) -> go c) refs
  in
  if not (Hash.is_null t.root) then go t.root

let to_list t =
  let acc = ref [] in
  iter t (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

let cardinal t =
  let n = ref 0 in
  iter t (fun _ _ -> incr n);
  !n

let leaf_sizes t =
  let acc = ref [] in
  let rec go h =
    match get t.store h with
    | Leaf _ -> acc := Store.size_of t.store h :: !acc
    | Internal (_, refs) -> Array.iter (fun (_, c) -> go c) refs
  in
  if not (Hash.is_null t.root) then go t.root;
  List.rev !acc

(* --- range queries ---------------------------------------------------------- *)

let in_range ~lo ~hi k =
  (match lo with None -> true | Some l -> String.compare k l >= 0)
  && match hi with None -> true | Some h -> String.compare k h <= 0

let range t ~lo ~hi =
  let acc = ref [] in
  let rec walk h =
    match get t.store h with
    | Leaf entries ->
        Array.iter
          (fun (k, v) -> if in_range ~lo ~hi k then acc := (k, v) :: !acc)
          entries
    | Internal (_, refs) ->
        (* Child i covers (split_{i-1}, split_i]. *)
        let prev = ref None in
        Array.iter
          (fun (split, child) ->
            let hit =
              (match lo with None -> true | Some l -> String.compare split l >= 0)
              && (match (hi, !prev) with
                 | None, _ | _, None -> true
                 | Some h, Some p -> String.compare p h < 0)
            in
            if hit then walk child;
            prev := Some split)
          refs
  in
  if not (Hash.is_null t.root) then walk t.root;
  List.rev !acc

(* --- streaming scan --------------------------------------------------------

   Lazy split-key descent over the half-open interval [lo, hi): the same
   child-hit predicate as [range] (child i covers (split_{i-1}, split_i])
   selects which subtrees can intersect the interval, but children are
   expanded only as the consumer demands entries.  Keys arrive in global
   order, so the first key >= hi terminates the whole stream — frames
   still on the stack cover strictly larger keys and are never fetched. *)
let scan t ~lo ~hi =
  let below_lo k =
    match lo with None -> false | Some l -> String.compare k l < 0
  in
  let at_or_above_hi k =
    match hi with None -> false | Some h -> String.compare k h >= 0
  in
  let rec step stack () =
    match stack with
    | [] -> Seq.Nil
    | `Leaf (entries, i) :: rest ->
        if i >= Array.length entries then step rest ()
        else
          let k, v = entries.(i) in
          if at_or_above_hi k then Seq.Nil
          else if below_lo k then step (`Leaf (entries, i + 1) :: rest) ()
          else Seq.Cons ((k, v), step (`Leaf (entries, i + 1) :: rest))
    | `Node h :: rest -> (
        match get t.store h with
        | Leaf entries -> step (`Leaf (entries, 0) :: rest) ()
        | Internal (_, refs) ->
            let frames = ref rest in
            for i = Array.length refs - 1 downto 0 do
              let split, child = refs.(i) in
              let prev = if i = 0 then None else Some (fst refs.(i - 1)) in
              let hit =
                (match lo with
                | None -> true
                | Some l -> String.compare split l >= 0)
                && match (hi, prev) with
                   | None, _ | _, None -> true
                   | Some h, Some p -> String.compare p h < 0
              in
              if hit then frames := `Node child :: !frames
            done;
            step !frames ())
  in
  if Hash.is_null t.root then Seq.empty else step [ `Node t.root ]

(* --- diff / merge --------------------------------------------------------------- *)

let td_decode_bytes bytes =
  match decode bytes with
  | Leaf entries -> Tree_diff.Entries (Array.to_list entries)
  | Internal (lvl, refs) -> Tree_diff.Children (lvl, Array.to_list refs)

let td_decode store h = td_decode_bytes (Store.get store h)

let diff t1 t2 =
  Tree_diff.diff ~decode:(td_decode t1.store) ~left:t1.root ~right:t2.root

let merge t1 t2 ~policy =
  let diffs = diff t1 t2 in
  let conflicts = ref [] in
  let ops =
    List.filter_map
      (fun { Kv.key; left; right } ->
        match (left, right) with
        | _, None -> None
        | None, Some rv -> Some (Kv.Put (key, rv))
        | Some lv, Some rv -> (
            match Kv.merge_values policy key lv rv with
            | Ok v -> if String.equal v lv then None else Some (Kv.Put (key, v))
            | Error c ->
                conflicts := c :: !conflicts;
                None))
      diffs
  in
  match !conflicts with
  | [] -> Ok (batch t1 ops)
  | cs -> Error (List.rev cs)

(* --- proofs ----------------------------------------------------------------------- *)

let prove t key =
  let rec go h acc =
    let bytes = Store.get t.store h in
    let acc = bytes :: acc in
    match decode bytes with
    | Leaf entries -> (find_entry entries key, acc)
    | Internal (_, refs) -> (
        match child_for refs key with
        | None -> (None, acc)
        | Some i -> go (snd refs.(i)) acc)
  in
  if Hash.is_null t.root then { Proof.key; value = None; nodes = [] }
  else begin
    let value, rev_nodes = go t.root [] in
    { Proof.key; value; nodes = List.rev rev_nodes }
  end

let verify_proof ~root (proof : Proof.t) =
  let rec go expected nodes =
    match nodes with
    | [] -> Error ()
    | bytes :: rest ->
        if not (Hash.equal (Hash.of_string bytes) expected) then Error ()
        else begin
          match decode bytes with
          | exception _ -> Error ()
          | Leaf entries ->
              if rest = [] then Ok (find_entry entries proof.key) else Error ()
          | Internal (_, refs) -> (
              match child_for refs proof.key with
              | None -> if rest = [] then Ok None else Error ()
              | Some i -> go (snd refs.(i)) rest)
        end
  in
  if Hash.is_null root then proof.nodes = [] && proof.value = None
  else
    match go root proof.nodes with
    | Ok v -> v = proof.value
    | Error () -> false

(* --- multiproofs ----------------------------------------------------------- *)

(* See the note in Mpt: the batched [walk_many] with recording/replaying
   fetches — prove and verify traverse identically, so the verifier can
   consume the deduplicated node list in first-visit order. *)

let prove_many t keys =
  let keys = List.sort_uniq String.compare keys in
  if keys = [] || Hash.is_null t.root then
    { Multiproof.claims = List.map (fun k -> (k, None)) keys; nodes = [] }
  else begin
    let fetch_bytes, recorded = Multiproof.recorder ~get:(Store.get t.store) in
    let found = Hashtbl.create (List.length keys) in
    walk_many
      ~fetch:(fun h -> decode (fetch_bytes h))
      t.root (Array.of_list keys) found;
    { Multiproof.claims = List.map (fun k -> (k, Hashtbl.find_opt found k)) keys;
      nodes = recorded () }
  end

let verify_many ~root (mp : Multiproof.t) =
  if not (Multiproof.well_formed mp) then false
  else if Hash.is_null root then
    mp.nodes = [] && List.for_all (fun (_, v) -> v = None) mp.claims
  else if mp.claims = [] then mp.nodes = []
  else begin
    let fetch_bytes, finished = Multiproof.consumer mp.nodes in
    let fetch h =
      match decode (fetch_bytes h) with
      | node -> node
      | exception Multiproof.Rejected -> raise Multiproof.Rejected
      | exception _ -> raise Multiproof.Rejected
    in
    let found = Hashtbl.create (List.length mp.claims) in
    match
      walk_many ~fetch root (Array.of_list (Multiproof.keys mp)) found
    with
    | () ->
        finished ()
        && List.for_all
             (fun (k, claimed) -> Hashtbl.find_opt found k = claimed)
             mp.claims
    | exception _ -> false
  end

let stats t =
  Tree_stats.collect ~get:(Store.get t.store) ~decode:td_decode_bytes ~root:t.root

(* --- range proofs --------------------------------------------------------------- *)

let prove_range t ~lo ~hi =
  Range_proof.prove
    ~get:(Store.get t.store)
    ~decode:td_decode_bytes ~root:t.root ~lo ~hi

let verify_range_proof ~root proof =
  Range_proof.verify ~decode:td_decode_bytes ~root proof

(* --- generic ------------------------------------------------------------------------ *)

(* Telemetry probes: see the note in Mpt.generic — observation only, no
   effect on hashing.  The probe prefix follows the instance name, so a
   Prolly-configured tree reports as [prolly.<op>]. *)
let probe t name f = Telemetry.probe (Store.sink t.store) name f

let rec generic_named ?pool name t =
  let p_lookup = name ^ ".lookup"
  and p_get_many = name ^ ".get_many"
  and p_batch = name ^ ".batch"
  and p_bulk = name ^ ".bulk_load"
  and p_diff = name ^ ".diff"
  and p_prove = name ^ ".prove"
  and p_prove_many = name ^ ".prove_many" in
  { Generic.name;
    store = t.store;
    root = t.root;
    lookup = (fun k -> probe t p_lookup (fun () -> lookup t k));
    get_many = (fun ks -> probe t p_get_many (fun () -> get_many t ks));
    path_length = path_length t;
    batch =
      (fun ops ->
        generic_named ?pool name (probe t p_batch (fun () -> batch t ops)));
    bulk_load =
      (fun entries ->
        generic_named ?pool name
          (probe t p_bulk (fun () -> of_sorted ?pool t.store t.cfg entries)));
    to_list = (fun () -> to_list t);
    cardinal = (fun () -> cardinal t);
    diff = (fun other -> probe t p_diff (fun () -> diff t { t with root = other }));
    merge =
      (fun policy other ->
        match merge t { t with root = other } ~policy with
        | Ok m -> Ok (generic_named ?pool name m)
        | Error cs -> Error cs);
    prove = (fun k -> probe t p_prove (fun () -> prove t k));
    verify = (fun ~root proof -> verify_proof ~root proof);
    prove_many = (fun ks -> probe t p_prove_many (fun () -> prove_many t ks));
    verify_many = (fun ~root mp -> verify_many ~root mp);
    reopen = (fun r -> generic_named ?pool name { t with root = r });
    range = (fun ~lo ~hi -> range t ~lo ~hi);
    scan = (fun ~lo ~hi -> scan t ~lo ~hi) }

let generic ?pool t = generic_named ?pool "pos-tree" t
