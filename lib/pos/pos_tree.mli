(** Pattern-Oriented-Split Tree (Section 3.4.3) — the probabilistically
    balanced search tree of Forkbase.

    The data layer is the key-ordered record sequence, partitioned into leaf
    nodes by a rolling hash over the serialized bytes: a boundary is placed
    after the record in which the hash matches the configured pattern.
    Internal layers hold (split-key, child-hash) pairs; their boundaries are
    decided from the child's cryptographic hash directly (no sliding window
    recomputation — the POS-Tree optimisation over Noms' Prolly Tree, which
    this module also implements via {!internal_rule} [By_rolling]).

    Whether a record carries a boundary is a property of its own bytes (the
    window rolls within one serialized record), so the partition — hence
    the whole tree — is a pure function of the record set: the index is
    Structurally Invariant.  Updates re-chunk only from the edited records
    until the next boundary-carrying record realigns them with the old
    partition, reusing every untouched node (Recursively Identical),
    implemented as a streaming rebuilder that skips clean subtrees in
    O(1).

    The ablation switches of Section 5.5 are exposed as configurations:
    {!config_non_structurally_invariant} (history-dependent local splits)
    and {!config_non_recursively_identical} (fresh salt per version, so no
    node is ever byte-identical across versions). *)

open Siri_crypto
open Siri_core
module Store = Siri_store.Store
module Chunker = Siri_chunk.Chunker

type internal_rule =
  | By_child_hash of { bits : int; min_items : int; max_items : int }
      (** boundary when the child hash matches a [bits]-wide pattern;
          expected fanout ≈ 2^bits, clamped to [min_items, max_items] *)
  | By_rolling of Chunker.config
      (** Noms/Prolly rule: rolling hash over the serialized entries *)

type config = {
  leaf : Chunker.config;
  internal : internal_rule;
  non_recursively_identical : bool;
      (** when set, every write stamps all nodes with a fresh salt — no
          sharing across versions (Section 5.5.2) *)
  local_split : bool;
      (** when set, an update is contained within the touched leaf (split on
          overflow, never re-merged with successors), so boundaries depend on
          update history — this is what disables structural invariance
          (Section 5.5.1) *)
}

val config :
  ?leaf_target:int ->
  ?internal_bits:int ->
  ?internal:internal_rule ->
  ?non_recursively_identical:bool ->
  unit ->
  config
(** Defaults: leaf nodes ≈ [leaf_target] bytes (default 1024, the paper's
    node size), internal fanout ≈ 2^[internal_bits] (default 5). *)

val config_prolly : ?leaf_target:int -> ?internal_target:int -> unit -> config
(** Noms-like configuration: both layers use the sliding-window rolling
    hash (window 67 bytes, as Noms defaults). *)

val config_non_structurally_invariant : ?leaf_target:int -> unit -> config
(** Section 5.5.1 ablation: the pattern is made so rare that forced
    max-size splits dominate, and updates are handled locally (the touched
    leaf splits on overflow but never re-merges with its successors, via
    [local_split]), so node boundaries depend on the update history — the
    same records reached through different op orders yield different
    trees. *)

val config_non_recursively_identical : ?leaf_target:int -> unit -> config

type t

val empty : Store.t -> config -> t
val of_root : Store.t -> config -> Hash.t -> t
val root : t -> Hash.t
val store : t -> Store.t
val conf : t -> config
val height : t -> int
(** Number of levels (0 for an empty tree, 1 for a single leaf). *)

val lookup : t -> Kv.key -> Kv.value option

val get_many : t -> Kv.key list -> (Kv.key * Kv.value option) list
(** Batched point lookups in one walk: distinct keys are sorted and
    partitioned at each internal node's split keys, so sibling keys share
    every decoded prefix node.  One result pair per input key, in input
    order; equivalent to [List.map (fun k -> (k, lookup t k))]. *)

val path_length : t -> Kv.key -> int

val insert : t -> Kv.key -> Kv.value -> t
val remove : t -> Kv.key -> t

val batch : t -> Kv.op list -> t
(** One streaming pass: all ops are applied bottom-up, every clean subtree
    is reused without being read — this is the batching advantage measured
    in Section 5.3.1. *)

val of_entries : Store.t -> config -> (Kv.key * Kv.value) list -> t
(** Bottom-up bulk build. *)

val of_sorted : ?pool:Siri_parallel.Pool.t -> Store.t -> config -> (Kv.key * Kv.value) list -> t
(** Bulk build in two passes per level: a sequential rolling-hash scan
    replays the streaming boundary rules to find every chunk cut, then the
    chunks are encoded and SHA-256'd in parallel on [pool] (default:
    sequential).  Boundaries depend only on the item sequence, so the root
    is byte-identical to {!of_entries} and to itself at any domain count.
    Duplicate keys: last wins. *)

val insert_many : ?pool:Siri_parallel.Pool.t -> t -> (Kv.key * Kv.value) list -> t
(** {!of_sorted} when the tree is empty, streaming {!batch} otherwise. *)

val to_list : t -> (Kv.key * Kv.value) list
val cardinal : t -> int
val iter : t -> (Kv.key -> Kv.value -> unit) -> unit

val range : t -> lo:Kv.key option -> hi:Kv.key option -> (Kv.key * Kv.value) list
(** Records with lo <= key <= hi (inclusive; [None] = unbounded), in key
    order; subtrees outside the interval are pruned by split key. *)

val scan :
  t -> lo:Kv.key option -> hi:Kv.key option -> (Kv.key * Kv.value) Seq.t
(** Streaming split-key descent over the half-open interval [lo, hi):
    entries in key order, children expanded lazily on demand; the first
    key at or past [hi] ends the stream without fetching further
    nodes. *)

val prove_range :
  t -> lo:Kv.key option -> hi:Kv.key option -> Range_proof.t
(** Authenticated range scan (see {!Siri_core.Range_proof}). *)

val verify_range_proof : root:Hash.t -> Range_proof.t -> bool

val diff : t -> t -> Kv.diff_entry list
(** Hash-pruned ordered diff (via {!Siri_core.Tree_diff}). *)

val merge : t -> t -> policy:Kv.merge_policy -> (t, Kv.conflict list) result
val prove : t -> Kv.key -> Proof.t
val verify_proof : root:Hash.t -> Proof.t -> bool

val prove_many : t -> Kv.key list -> Multiproof.t
(** Batched proof over a key set in one walk (see {!Siri_mpt.Mpt.prove_many}
    for the shared discipline): deduplicated nodes in first-visit order,
    absence claims witnessed by the node where the search exits. *)

val verify_many : root:Hash.t -> Multiproof.t -> bool
(** Store-independent replay of the proving walk; accepts iff all nodes
    are consumed in order, each hashing to the reference the traversal
    requested, and every claim matches what the replay finds. *)

val generic : ?pool:Siri_parallel.Pool.t -> t -> Generic.t
(** With [pool], the instance's [bulk_load] runs through the parallel
    {!of_sorted} pipeline. *)

val generic_named : ?pool:Siri_parallel.Pool.t -> string -> t -> Generic.t
(** Like {!generic} with a custom display name — used by the Prolly Tree
    instantiation. *)

val stats : t -> Tree_stats.t
(** Per-level node counts/sizes and fanouts (deduplicated by node). *)

val leaf_sizes : t -> int list
(** Byte sizes of all leaf nodes — used to validate the chunk-size
    distribution against the configured pattern (Table 3). *)
