(** Binary node serialization: append-only writers and positional readers.

    All index nodes are encoded with these primitives before being hashed and
    stored, so encodings must be canonical: the same logical node always
    yields the same bytes. *)

module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int

  val u8 : t -> int -> unit
  (** One byte, 0..255. *)

  val u16 : t -> int -> unit
  (** Two bytes big-endian, 0..65535. *)

  val u32 : t -> int -> unit
  (** Four bytes big-endian, 0..2^32-1 (must fit; on 64-bit OCaml ints do). *)

  val varint : t -> int -> unit
  (** LEB128 unsigned varint; argument must be non-negative. *)

  val raw : t -> string -> unit
  (** Append bytes verbatim. *)

  val str : t -> string -> unit
  (** Length-prefixed (varint) string. *)

  val hash : t -> Siri_crypto.Hash.t -> unit
  (** Append the raw 32 bytes of a digest. *)

  val contents : t -> string
end

module Reader : sig
  type t

  val of_string : string -> t

  val of_substring : string -> off:int -> len:int -> t
  (** A zero-copy reader over the slice [off, off+len) of the string — no
      [String.sub] is performed; reads past the slice raise {!Truncated}
      exactly as if the slice were a standalone string.  Raises
      [Invalid_argument] if the slice falls outside the string. *)

  val pos : t -> int
  (** Bytes consumed so far, relative to the start of the (sub)string the
      reader was opened on. *)

  val remaining : t -> int
  val at_end : t -> bool

  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int

  val varint : t -> int
  (** Never returns a negative value: a continuation run that would shift
      past the 62 usable bits of an OCaml int raises {!Truncated}. *)

  val raw : t -> int -> string
  val str : t -> string
  val hash : t -> Siri_crypto.Hash.t

  exception Truncated
  (** Raised by any read that runs past the end of input or decodes a
      malformed length (negative or overflowing varint).  This is the
      {e only} exception any reader entry point may raise on arbitrary
      bytes — fuzzed in [test/test_codec.ml]. *)
end
