type t = String of string | List of t list

(* Big-endian minimal representation of a length (empty for zero). *)
let be_bytes n =
  let rec loop n acc =
    if n = 0 then acc else loop (n lsr 8) (Char.chr (n land 0xFF) :: acc)
  in
  let chars = loop n [] in
  String.init (List.length chars) (List.nth chars)

let rec encode_to buf item =
  match item with
  | String s ->
      let n = String.length s in
      if n = 1 && Char.code s.[0] < 0x80 then Buffer.add_string buf s
      else if n <= 55 then begin
        Buffer.add_char buf (Char.chr (0x80 + n));
        Buffer.add_string buf s
      end
      else begin
        let len_bytes = be_bytes n in
        Buffer.add_char buf (Char.chr (0xB7 + String.length len_bytes));
        Buffer.add_string buf len_bytes;
        Buffer.add_string buf s
      end
  | List items ->
      let payload = Buffer.create 64 in
      List.iter (encode_to payload) items;
      let n = Buffer.length payload in
      if n <= 55 then begin
        Buffer.add_char buf (Char.chr (0xC0 + n));
        Buffer.add_buffer buf payload
      end
      else begin
        let len_bytes = be_bytes n in
        Buffer.add_char buf (Char.chr (0xF7 + String.length len_bytes));
        Buffer.add_string buf len_bytes;
        Buffer.add_buffer buf payload
      end

let encode item =
  let buf = Buffer.create 64 in
  encode_to buf item;
  Buffer.contents buf

let bad msg = invalid_arg ("Rlp.decode: " ^ msg)

(* Decode one item starting at [pos]; returns (item, next position). *)
let rec decode_at s pos =
  if pos >= String.length s then bad "truncated";
  let prefix = Char.code s.[pos] in
  let need_len n from =
    if from + n > String.length s then bad "truncated payload";
    n
  in
  let read_be_len off n =
    if n > 8 then bad "length too large";
    if off + n > String.length s then bad "truncated length";
    if n > 0 && s.[off] = '\000' then bad "non-canonical length (leading zero)";
    let rec loop i acc =
      if i = n then acc else loop (i + 1) ((acc lsl 8) lor Char.code s.[off + i])
    in
    let v = loop 0 0 in
    if v <= 55 then bad "non-canonical length (should be short form)";
    v
  in
  if prefix < 0x80 then (String (String.make 1 (Char.chr prefix)), pos + 1)
  else if prefix <= 0xB7 then begin
    let n = need_len (prefix - 0x80) (pos + 1) in
    if n = 1 && Char.code s.[pos + 1] < 0x80 then
      bad "non-canonical single byte";
    (String (String.sub s (pos + 1) n), pos + 1 + n)
  end
  else if prefix <= 0xBF then begin
    let len_len = prefix - 0xB7 in
    let n = read_be_len (pos + 1) len_len in
    let _ = need_len n (pos + 1 + len_len) in
    (String (String.sub s (pos + 1 + len_len) n), pos + 1 + len_len + n)
  end
  else if prefix <= 0xF7 then begin
    let n = need_len (prefix - 0xC0) (pos + 1) in
    (List (decode_list s (pos + 1) (pos + 1 + n)), pos + 1 + n)
  end
  else begin
    let len_len = prefix - 0xF7 in
    let n = read_be_len (pos + 1) len_len in
    let _ = need_len n (pos + 1 + len_len) in
    let start = pos + 1 + len_len in
    (List (decode_list s start (start + n)), start + n)
  end

and decode_list s pos stop =
  if pos = stop then []
  else if pos > stop then bad "list payload overrun"
  else
    let item, next = decode_at s pos in
    item :: decode_list s next stop

let decode s =
  let item, next = decode_at s 0 in
  if next <> String.length s then bad "trailing bytes";
  item

let of_int n =
  if n < 0 then invalid_arg "Rlp.of_int: negative";
  String (be_bytes n)

let to_int = function
  | List _ -> invalid_arg "Rlp.to_int: list"
  | String s ->
      if String.length s > 8 then invalid_arg "Rlp.to_int: too long";
      if String.length s > 0 && s.[0] = '\000' then
        invalid_arg "Rlp.to_int: leading zero";
      String.fold_left (fun acc c -> (acc lsl 8) lor Char.code c) 0 s

let rec pp fmt = function
  | String s ->
      if String.for_all (fun c -> c >= ' ' && c < '\127') s then
        Format.fprintf fmt "%S" s
      else Format.fprintf fmt "0x%s" (Siri_crypto.Hex.encode s)
  | List items ->
      Format.fprintf fmt "[@[<hov>%a@]]"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ") pp)
        items
