(** RLP — Ethereum's Recursive Length Prefix encoding.

    Used by the Ethereum-like workload to serialize synthetic transactions,
    exactly as the paper's Ethereum dataset stores RLP-encoded raw
    transactions.  Implements the encoding of the Yellow Paper, Appendix B. *)

type t =
  | String of string  (** a byte string item *)
  | List of t list  (** a (possibly nested) list of items *)

val encode : t -> string
(** Canonical RLP encoding. *)

val decode : string -> t
(** Inverse of {!encode}.  Raises [Invalid_argument] on malformed or
    non-canonical input, or if trailing bytes remain. *)

val of_int : int -> t
(** Big-endian minimal encoding of a non-negative integer, as Ethereum
    encodes scalars (zero is the empty string). *)

val to_int : t -> int
(** Inverse of {!of_int}.  Raises [Invalid_argument] on a list or an
    over-long scalar. *)

val pp : Format.formatter -> t -> unit
