module Hash = Siri_crypto.Hash

let header_len = 4 + Hash.size

let u32_be n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (n land 0xFF));
  Bytes.unsafe_to_string b

let encode payload =
  let len = u32_be (String.length payload) in
  let digest = Hash.to_raw (Hash.of_concat len payload) in
  len ^ digest ^ payload

type step =
  | Frame of { payload_off : int; payload_len : int; next : int }
  | End
  | Torn of int
  | Corrupt

let step blob ~pos =
  let total = String.length blob in
  let remaining = total - pos in
  if remaining = 0 then End
  else if remaining < header_len then Torn remaining
  else begin
    let len =
      (Char.code blob.[pos] lsl 24)
      lor (Char.code blob.[pos + 1] lsl 16)
      lor (Char.code blob.[pos + 2] lsl 8)
      lor Char.code blob.[pos + 3]
    in
    if remaining - header_len < len then
      (* Torn mid-payload — or a length flip on the final frame, which is
         indistinguishable from a torn write and clamped the same way. *)
      Torn remaining
    else begin
      let len_bytes = String.sub blob pos 4 in
      let digest = Hash.of_raw (String.sub blob (pos + 4) Hash.size) in
      let payload_off = pos + header_len in
      if
        Hash.equal (Hash.of_concat_sub len_bytes blob ~off:payload_off ~len)
          digest
      then Frame { payload_off; payload_len = len; next = payload_off + len }
      else Corrupt
    end
  end
