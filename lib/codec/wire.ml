module Hash = Siri_crypto.Hash

module Writer = struct
  type t = Buffer.t

  let create ?(capacity = 256) () = Buffer.create capacity
  let length = Buffer.length

  let u8 t v =
    if v < 0 || v > 0xFF then invalid_arg "Wire.Writer.u8";
    Buffer.add_char t (Char.chr v)

  let u16 t v =
    if v < 0 || v > 0xFFFF then invalid_arg "Wire.Writer.u16";
    Buffer.add_char t (Char.chr (v lsr 8));
    Buffer.add_char t (Char.chr (v land 0xFF))

  let u32 t v =
    if v < 0 || v > 0xFFFFFFFF then invalid_arg "Wire.Writer.u32";
    Buffer.add_char t (Char.chr ((v lsr 24) land 0xFF));
    Buffer.add_char t (Char.chr ((v lsr 16) land 0xFF));
    Buffer.add_char t (Char.chr ((v lsr 8) land 0xFF));
    Buffer.add_char t (Char.chr (v land 0xFF))

  let rec varint t v =
    if v < 0 then invalid_arg "Wire.Writer.varint: negative";
    if v < 0x80 then Buffer.add_char t (Char.chr v)
    else begin
      Buffer.add_char t (Char.chr (0x80 lor (v land 0x7F)));
      varint t (v lsr 7)
    end

  let raw t s = Buffer.add_string t s

  let str t s =
    varint t (String.length s);
    raw t s

  let hash t h = raw t (Hash.to_raw h)
  let contents = Buffer.contents
end

module Reader = struct
  (* A reader is a window [base, limit) over [src]; [of_string] opens the
     whole string, [of_substring] a slice of it without copying — frame
     decoders (WAL scan) read length-prefixed payloads in place instead of
     materializing a [String.sub] per frame. *)
  type t = { src : string; mutable pos : int; base : int; limit : int }

  exception Truncated

  let of_string src = { src; pos = 0; base = 0; limit = String.length src }

  let of_substring src ~off ~len =
    if off < 0 || len < 0 || off + len > String.length src then
      invalid_arg "Wire.Reader.of_substring";
    { src; pos = off; base = off; limit = off + len }

  let pos t = t.pos - t.base
  let remaining t = t.limit - t.pos
  let at_end t = remaining t = 0

  let need t n = if n < 0 || remaining t < n then raise Truncated

  let u8 t =
    need t 1;
    let v = Char.code t.src.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    let hi = u8 t in
    let lo = u8 t in
    (hi lsl 8) lor lo

  let u32 t =
    let hi = u16 t in
    let lo = u16 t in
    (hi lsl 16) lor lo

  let varint t =
    (* Cap the shift: a malicious run of continuation bytes must fail
       cleanly instead of shifting past the word size.  The last usable
       chunk sits at shift 56 and may only carry 6 bits (bits 56..61);
       anything larger would spill into the sign bit of a 63-bit OCaml
       int and produce a negative "length". *)
    let rec loop shift acc =
      let b = u8 t in
      let chunk = b land 0x7F in
      if shift = 56 && (chunk lsr 6 <> 0 || b land 0x80 <> 0) then
        raise Truncated;
      let acc = acc lor (chunk lsl shift) in
      if b land 0x80 = 0 then acc else loop (shift + 7) acc
    in
    loop 0 0

  let raw t n =
    need t n;
    let s = String.sub t.src t.pos n in
    t.pos <- t.pos + n;
    s

  let str t =
    let n = varint t in
    raw t n

  let hash t = Hash.of_raw (raw t Hash.size)
end
