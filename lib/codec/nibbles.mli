(** Nibble (hex-digit) paths for the Merkle Patricia Trie.

    MPT splits each key byte into two 4-bit nibbles; paths in branch nodes
    fan out over 16 children, and extension/leaf nodes carry compacted nibble
    runs ("encodedPath").  This module represents nibble sequences and the
    hex-prefix compact encoding of the Ethereum Yellow Paper (Appendix C). *)

type t
(** An immutable nibble sequence. *)

val of_key : string -> t
(** Expand a byte-string key into its 2×length nibble sequence. *)

val of_nibble_string : string -> t
(** Adopt a raw buffer with one nibble value (0–15) per byte — used when a
    traversal accumulates nibbles in a [Buffer].  Raises [Invalid_argument]
    if any byte exceeds 15. *)

val to_key : t -> string
(** Inverse of {!of_key}.  Raises [Invalid_argument] on odd length. *)

val empty : t
val length : t -> int
val is_empty : t -> bool

val get : t -> int -> int
(** [get t i] is the [i]-th nibble, in [0, 15]. *)

val sub : t -> int -> int -> t
(** [sub t off len] — a slice, sharing no mutable state. *)

val drop : t -> int -> t
(** Drop the first [n] nibbles. *)

val concat : t -> t -> t
val cons : int -> t -> t

val common_prefix : t -> t -> int
(** Length of the longest common prefix. *)

val equal_at : t -> t -> off:int -> bool
(** [equal_at p full ~off] is [equal p (drop full off)] without
    materializing the suffix. *)

val common_prefix_at : t -> t -> off:int -> int
(** [common_prefix_at p full ~off] is [common_prefix p (drop full off)]
    without materializing the suffix. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val compact_encode : leaf:bool -> t -> string
(** Hex-prefix encoding: packs nibbles into bytes with a flag nibble that
    records parity and the leaf/extension distinction. *)

val compact_decode : string -> bool * t
(** Inverse of {!compact_encode}: returns [(leaf, path)]. *)

val pp : Format.formatter -> t -> unit
(** Hex digits, e.g. [3a7f]. *)
