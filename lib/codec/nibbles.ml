(* A nibble sequence is a string of bytes each in 0..15.  One byte per nibble
   wastes half the space in memory but makes slicing trivial; the compact
   encoding is used whenever a path is serialized into a node. *)

type t = string

let of_key key =
  String.init
    (2 * String.length key)
    (fun i ->
      let c = Char.code key.[i / 2] in
      Char.chr (if i mod 2 = 0 then c lsr 4 else c land 0xF))

let of_nibble_string s =
  String.iter
    (fun c -> if Char.code c > 15 then invalid_arg "Nibbles.of_nibble_string")
    s;
  s

let to_key t =
  let n = String.length t in
  if n mod 2 <> 0 then invalid_arg "Nibbles.to_key: odd length";
  String.init (n / 2) (fun i ->
      Char.chr ((Char.code t.[2 * i] lsl 4) lor Char.code t.[(2 * i) + 1]))

let empty = ""
let length = String.length
let is_empty t = t = ""
let get t i = Char.code t.[i]
let sub = String.sub
let drop t n = String.sub t n (String.length t - n)
let concat a b = a ^ b
let cons n t = String.make 1 (Char.chr n) ^ t

let common_prefix a b =
  let limit = min (String.length a) (String.length b) in
  let rec loop i = if i < limit && a.[i] = b.[i] then loop (i + 1) else i in
  loop 0

(* Offset variants so a traversal can keep one nibble string and walk an
   index into it instead of allocating a [drop] suffix per node. *)

let equal_at p full ~off =
  let n = String.length p in
  String.length full - off = n
  &&
  let rec go i = i = n || (p.[i] = full.[off + i] && go (i + 1)) in
  go 0

let common_prefix_at p full ~off =
  let limit = min (String.length p) (String.length full - off) in
  let rec loop i = if i < limit && p.[i] = full.[off + i] then loop (i + 1) else i in
  loop 0

let equal = String.equal
let compare = String.compare

(* Hex-prefix encoding (Yellow Paper appendix C):
   flag nibble = 2*leaf + parity; odd paths pack their first nibble next to
   the flag, even paths pad with a zero nibble. *)
let compact_encode ~leaf t =
  let n = String.length t in
  let odd = n mod 2 = 1 in
  let flag = (if leaf then 2 else 0) + if odd then 1 else 0 in
  let first =
    if odd then Char.chr ((flag lsl 4) lor get t 0) else Char.chr (flag lsl 4)
  in
  let start = if odd then 1 else 0 in
  let body =
    String.init
      ((n - start) / 2)
      (fun i ->
        Char.chr ((get t (start + (2 * i)) lsl 4) lor get t (start + (2 * i) + 1)))
  in
  String.make 1 first ^ body

let compact_decode s =
  if String.length s = 0 then invalid_arg "Nibbles.compact_decode: empty";
  let flag = Char.code s.[0] lsr 4 in
  if flag > 3 then invalid_arg "Nibbles.compact_decode: bad flag";
  let leaf = flag land 2 <> 0 in
  let odd = flag land 1 <> 0 in
  let body = of_key (String.sub s 1 (String.length s - 1)) in
  let path =
    if odd then cons (Char.code s.[0] land 0xF) body else body
  in
  (leaf, path)

let pp fmt t =
  String.iter (fun c -> Format.fprintf fmt "%x" (Char.code c)) t
