(** Checksummed length-prefixed framing, shared by every append-only file
    in the system (the WAL commit journal and the pack-file segments).

    A frame is [len(4, big-endian) | digest(32) | payload], where the digest
    is SHA-256 over the length bytes followed by the payload — so neither a
    payload flip nor a length flip can go unnoticed.  {!step} classifies the
    bytes at an offset as exactly one of: a verified frame, a torn tail
    (incomplete header or payload — what a crashed append leaves behind), or
    a checksum mismatch (mid-file corruption).  Scanners built on it share
    the WAL's recovery discipline: torn tails are clamped, corruption is
    refused, wrong reads are impossible. *)

val header_len : int
(** Bytes before the payload: 4 length bytes + 32 checksum bytes. *)

val encode : string -> string
(** Wrap a payload into a frame. *)

type step =
  | Frame of { payload_off : int; payload_len : int; next : int }
      (** A verified frame starts at the queried offset; its payload is the
          slice [payload_off, payload_off + payload_len) and the next frame
          (if any) starts at [next]. *)
  | End  (** The offset is exactly the end of the blob. *)
  | Torn of int
      (** The remaining bytes are shorter than the declared frame — a torn
          append; the payload carries how many trailing bytes to clamp. *)
  | Corrupt
      (** A complete frame whose checksum does not match — bit rot or
          tampering, never a torn write. *)

val step : string -> pos:int -> step
(** Classify the bytes of [blob] starting at [pos] (which must be within
    [0, length blob]).  Checksum verification is zero-copy — the digest is
    computed over slices in place. *)
