open Siri_crypto
open Siri_core
module Store = Siri_store.Store
module Wire = Siri_codec.Wire
module Telemetry = Siri_telemetry.Telemetry

type config = { capacity : int; fanout : int }

let config ?(capacity = 1024) ?(fanout = 2) () =
  if capacity < 1 then invalid_arg "Mbt.config: capacity must be >= 1";
  if fanout < 2 then invalid_arg "Mbt.config: fanout must be >= 2";
  { capacity; fanout }

(* Node counts per level, leaves (buckets) first; the last level has one
   node, the root.  For capacity 1 the bucket itself is the root. *)
let level_counts cfg =
  let rec loop count acc =
    if count = 1 then List.rev (1 :: List.tl acc)
    else
      let next = (count + cfg.fanout - 1) / cfg.fanout in
      loop next (next :: acc)
  in
  Array.of_list (loop cfg.capacity [ cfg.capacity ])

type t = {
  store : Store.t;
  cfg : config;
  root : Hash.t;
  counts : int array;  (** cached level sizes *)
}

let root t = t.root
let store t = t.store
let conf t = t.cfg
let depth t = Array.length t.counts - 1

(* --- codec -------------------------------------------------------------- *)

let tag_bucket = 0
let tag_internal = 1

let encode_bucket entries =
  let w = Wire.Writer.create () in
  Wire.Writer.u8 w tag_bucket;
  Wire.Writer.varint w (Array.length entries);
  Array.iter
    (fun (k, v) ->
      Wire.Writer.str w k;
      Wire.Writer.str w v)
    entries;
  Wire.Writer.contents w

let encode_internal hashes =
  let w = Wire.Writer.create () in
  Wire.Writer.u8 w tag_internal;
  Wire.Writer.varint w (Array.length hashes);
  Array.iter (fun h -> Wire.Writer.hash w h) hashes;
  Wire.Writer.contents w

type node = Bucket of (Kv.key * Kv.value) array | Internal of Hash.t array

let decode bytes =
  let r = Wire.Reader.of_string bytes in
  let tag = Wire.Reader.u8 r in
  if tag = tag_bucket then begin
    let n = Wire.Reader.varint r in
    Bucket
      (Array.init n (fun _ ->
           let k = Wire.Reader.str r in
           let v = Wire.Reader.str r in
           (k, v)))
  end
  else
    Internal (Array.init (Wire.Reader.varint r) (fun _ -> Wire.Reader.hash r))

type Siri_readpath.Node_cache.repr += Cached of node

(* Read through the store's decoded-node cache.  Decoded arrays are never
   mutated ([rewrite_path] copies child arrays before updating), so a
   shared decoding is safe. *)
let get store h =
  let cache = Store.cache store in
  if not (Siri_readpath.Node_cache.enabled cache) then
    decode (Store.get store h)
  else
    match Siri_readpath.Node_cache.find cache h with
    | Some (Cached node) -> node
    | _ ->
        let bytes = Store.get store h in
        let node = decode bytes in
        Siri_readpath.Node_cache.insert cache h ~bytes:(String.length bytes)
          (Cached node);
        node

let put_bucket store entries = Store.put store (encode_bucket entries)

let put_internal store hashes =
  Store.put store ~children:(Array.to_list hashes) (encode_internal hashes)

(* --- construction ------------------------------------------------------- *)

(* Build the internal levels over the given level-0 hashes. *)
let build_up store cfg leaf_hashes =
  let rec loop hashes =
    let n = Array.length hashes in
    if n = 1 then hashes.(0)
    else begin
      let parents = (n + cfg.fanout - 1) / cfg.fanout in
      let next =
        Array.init parents (fun i ->
            let lo = i * cfg.fanout in
            let hi = min (lo + cfg.fanout) n in
            put_internal store (Array.sub hashes lo (hi - lo)))
      in
      loop next
    end
  in
  loop leaf_hashes

let empty store cfg =
  let empty_bucket = put_bucket store [||] in
  let leaves = Array.make cfg.capacity empty_bucket in
  { store; cfg; root = build_up store cfg leaves; counts = level_counts cfg }

let of_root store cfg root = { store; cfg; root; counts = level_counts cfg }

(* --- lookup ------------------------------------------------------------- *)

(* Uniform bucket choice from the key's digest. *)
let bucket_of_hash cfg h =
  let v = ref 0 in
  for i = 0 to 6 do
    v := (!v lsl 8) lor Hash.byte h i
  done;
  !v mod cfg.capacity

let bucket_index cfg key = bucket_of_hash cfg (Hash.of_string key)

(* Hashes along the path root→bucket for bucket index [b]; returns the
   decoded bucket and the list of (internal node, child slot) pairs visited,
   root first. *)
let walk t b =
  let d = depth t in
  let rec go h level acc =
    match get t.store h with
    | Bucket entries ->
        assert (level = 0);
        (entries, List.rev acc)
    | Internal children ->
        (* index of the target node at [level - 1] is b / fanout^(level-1);
           the child slot within this node is that index mod fanout. *)
        let idx_below =
          let rec div v k = if k = 0 then v else div (v / t.cfg.fanout) (k - 1) in
          div b (level - 1)
        in
        let slot = idx_below mod t.cfg.fanout in
        go children.(slot) (level - 1) ((h, children, slot) :: acc)
  in
  go t.root d []

type bucket = (Kv.key * Kv.value) array

let load_bucket t key = fst (walk t (bucket_index t.cfg key))

let scan_bucket entries key =
  let rec bsearch lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let k, v = entries.(mid) in
      match String.compare key k with
      | 0 -> Some v
      | c when c < 0 -> bsearch lo mid
      | _ -> bsearch (mid + 1) hi
  in
  bsearch 0 (Array.length entries)

let bucket_size = Array.length

let lookup t key = scan_bucket (load_bucket t key) key
let path_length t _key = depth t + 1

(* Batched point lookups: keys are grouped by target bucket and the group
   set descends the tree once, partitioned by child slot at every
   internal node — each shared internal node (always including the root)
   is fetched and decoded once for the whole batch instead of once per
   key. *)
(* Distinct keys grouped by target bucket, groups in ascending bucket
   order — the canonical shape shared by [get_many], [prove_many] and
   [verify_many], so proving and verifying partition identically. *)
let groups_of_keys cfg keys =
  let by_bucket = Hashtbl.create 16 in
  List.iter
    (fun k ->
      let b = bucket_index cfg k in
      match Hashtbl.find_opt by_bucket b with
      | Some ks ->
          if not (List.mem k ks) then Hashtbl.replace by_bucket b (k :: ks)
      | None -> Hashtbl.add by_bucket b [ k ])
    keys;
  Hashtbl.fold (fun b ks acc -> (b, List.rev ks) :: acc) by_bucket []
  |> List.sort compare

(* The walk itself, parameterized by node fetch so the same traversal
   serves lookups (cache-aware [get]), proving ([Multiproof.recorder]) and
   verifying ([Multiproof.consumer]).  [groups] are the buckets living
   under node [h] at [level]. *)
let walk_groups cfg ~fetch root depth groups found =
    let rec go h level groups =
      match fetch h with
      | Bucket entries ->
          List.iter
            (fun (_, ks) ->
              List.iter
                (fun k ->
                  match scan_bucket entries k with
                  | Some v -> Hashtbl.replace found k v
                  | None -> ())
                ks)
            groups
      | Internal children ->
          let slot_of b =
            let rec div v k = if k = 0 then v else div (v / cfg.fanout) (k - 1) in
            div b (level - 1) mod cfg.fanout
          in
          let by_slot = Array.make (Array.length children) [] in
          List.iter
            (fun (b, ks) ->
              let s = slot_of b in
              by_slot.(s) <- (b, ks) :: by_slot.(s))
            groups;
          Array.iteri
            (fun s gs ->
              if gs <> [] then go children.(s) (level - 1) (List.rev gs))
            by_slot
    in
    go root depth groups

let get_many t keys =
  if keys = [] then []
  else begin
    let found = Hashtbl.create (List.length keys) in
    walk_groups t.cfg ~fetch:(get t.store) t.root (depth t)
      (groups_of_keys t.cfg keys)
      found;
    List.map (fun k -> (k, Hashtbl.find_opt found k)) keys
  end

(* --- updates ------------------------------------------------------------ *)

(* Apply sorted ops to a sorted entry array. *)
let apply_ops entries ops =
  Array.of_list (Kv.apply_sorted (Array.to_list entries) ops)

(* Rewrite the path to bucket [b] so that the bucket holds [entries']. *)
let rewrite_path t b entries' =
  let _, path = walk t b in
  let new_leaf = put_bucket t.store entries' in
  let rec rebuild path child =
    match path with
    | [] -> child
    | (_, children, slot) :: above ->
        let children = Array.copy children in
        children.(slot) <- child;
        rebuild above (put_internal t.store children)
  in
  { t with root = rebuild (List.rev path) new_leaf }

(* Ops grouped by target bucket, ascending, each group op-sorted. *)
let group_by_bucket cfg ops =
  let by_bucket = Hashtbl.create 16 in
  List.iter
    (fun op ->
      let b = bucket_index cfg (Kv.key_of_op op) in
      Hashtbl.replace by_bucket b
        (op :: (try Hashtbl.find by_bucket b with Not_found -> [])))
    ops;
  Hashtbl.fold
    (fun b ops_rev acc -> (b, Kv.sort_ops (List.rev ops_rev)) :: acc)
    by_bucket []
  |> List.sort compare

let batch_seq t ops =
  (* Group ops by bucket; rewrite each touched path once. *)
  group_by_bucket t.cfg ops
  |> List.fold_left
       (fun t (b, ops) ->
         let entries, _ = walk t b in
         rewrite_path t b (apply_ops entries ops))
       t

(* --- parallel commit pipeline -------------------------------------------- *)

module Pool = Siri_parallel.Pool

let note_and_put store staged =
  let l = Array.to_list staged in
  Store.note_staged l;
  Store.put_staged store l

(* Internal levels over the level-0 hashes, encoding+hashing each level's
   parents on the pool and installing them in index order — same nodes,
   same order, same root as the sequential [build_up]. *)
let build_up_pool pool store cfg leaf_hashes =
  let sink = Store.sink store in
  let rec loop hashes =
    let n = Array.length hashes in
    if n = 1 then hashes.(0)
    else begin
      let parents = (n + cfg.fanout - 1) / cfg.fanout in
      let slices =
        Array.init parents (fun i ->
            let lo = i * cfg.fanout in
            Array.sub hashes lo (min cfg.fanout (n - lo)))
      in
      let staged =
        Telemetry.with_span sink "commit.parallel" (fun () ->
            Pool.map pool
              (fun slice ->
                Store.stage_quiet ~children:(Array.to_list slice)
                  (encode_internal slice))
              slices)
      in
      note_and_put store staged;
      loop (Array.map (fun s -> s.Store.digest) staged)
    end
  in
  loop leaf_hashes

(* Level-wise incremental commit: instead of rewriting the root→bucket
   path once per dirty bucket (re-hashing shared ancestors up to
   [fanout] times), rebuild each affected node exactly once per level,
   fanning the pure encode+hash work over the pool.  Node contents are
   determined by the final child set, so the resulting root is identical
   to the sequential fold's — with strictly fewer intermediate puts. *)
let batch_pool pool t ops =
  match group_by_bucket t.cfg ops with
  | [] -> t
  | groups ->
      let fanout = t.cfg.fanout in
      let d = depth t in
      let sink = Store.sink t.store in
      let ancestor b l =
        let r = ref b in
        for _ = 1 to l do
          r := !r / fanout
        done;
        !r
      in
      let affected = Array.make (d + 1) [||] in
      affected.(0) <- Array.of_list (List.map fst groups);
      for l = 1 to d do
        affected.(l) <-
          Array.of_list
            (List.sort_uniq compare
               (Array.to_list (Array.map (fun b -> ancestor b l) affected.(0))))
      done;
      (* Top-down: current hash and children of every affected node. *)
      let children_at = Hashtbl.create 64 in
      let hash_at = Hashtbl.create 64 in
      Hashtbl.replace hash_at (d, 0) t.root;
      for l = d downto 1 do
        Array.iter
          (fun j ->
            match get t.store (Hashtbl.find hash_at (l, j)) with
            | Internal cs ->
                Hashtbl.replace children_at (l, j) cs;
                Array.iter
                  (fun c ->
                    if c / fanout = j then
                      Hashtbl.replace hash_at (l - 1, c) cs.(c mod fanout))
                  affected.(l - 1)
            | Bucket _ -> assert false)
          affected.(l)
      done;
      (* Dirty buckets: fetch on the coordinator, apply+encode+hash on the
         pool, install in bucket order. *)
      let leaf_inputs =
        Array.map
          (fun (b, bops) ->
            match get t.store (Hashtbl.find hash_at (0, b)) with
            | Bucket entries -> (b, entries, bops)
            | Internal _ -> assert false)
          (Array.of_list groups)
      in
      let staged_leaves =
        Telemetry.with_span sink "commit.parallel" (fun () ->
            Pool.map pool
              (fun (_, entries, bops) ->
                Store.stage_quiet (encode_bucket (apply_ops entries bops)))
              leaf_inputs)
      in
      note_and_put t.store staged_leaves;
      let current = ref (Hashtbl.create 16) in
      Array.iteri
        (fun i (b, _, _) ->
          Hashtbl.replace !current b staged_leaves.(i).Store.digest)
        leaf_inputs;
      for l = 1 to d do
        let parents = affected.(l) in
        let inputs =
          Array.map
            (fun j ->
              let cs = Array.copy (Hashtbl.find children_at (l, j)) in
              Hashtbl.iter
                (fun c h -> if c / fanout = j then cs.(c mod fanout) <- h)
                !current;
              cs)
            parents
        in
        let staged =
          Telemetry.with_span sink "commit.parallel" (fun () ->
              Pool.map pool
                (fun cs ->
                  Store.stage_quiet ~children:(Array.to_list cs)
                    (encode_internal cs))
                inputs)
        in
        note_and_put t.store staged;
        let next = Hashtbl.create 16 in
        Array.iteri (fun i j -> Hashtbl.replace next j staged.(i).Store.digest) parents;
        current := next
      done;
      if Telemetry.enabled sink then begin
        Telemetry.incr sink "parallel.maps";
        Telemetry.incr sink ~by:(Array.length leaf_inputs) "parallel.tasks";
        let nodes =
          Array.fold_left (fun acc a -> acc + Array.length a) 0 affected
        in
        Telemetry.incr sink ~by:nodes "parallel.nodes"
      end;
      { t with root = Hashtbl.find !current 0 }

let batch ?pool t ops =
  match pool with None -> batch_seq t ops | Some pool -> batch_pool pool t ops

let insert t key value = batch t [ Kv.Put (key, value) ]
let remove t key = batch t [ Kv.Del key ]

let sorted_bucket lst =
  Array.of_list
    (Kv.apply_sorted [] (Kv.sort_ops (List.map (fun (k, v) -> Kv.Put (k, v)) lst)))

let of_entries_seq store cfg entries =
  (* Bulk build: fill all buckets, then hash bottom-up once. *)
  let buckets = Array.make cfg.capacity [] in
  List.iter
    (fun (k, v) ->
      let b = bucket_index cfg k in
      buckets.(b) <- (k, v) :: buckets.(b))
    entries;
  let leaves = Array.map (fun lst -> put_bucket store (sorted_bucket lst)) buckets in
  { store; cfg; root = build_up store cfg leaves; counts = level_counts cfg }

(* Parallel bulk build.  Three pool phases — key digesting for bucket
   assignment, bucket encoding, internal levels — each staged quietly and
   installed in the same order as the sequential build, so the root, the
   put sequence and the metering totals are all byte-identical to
   [of_entries_seq]. *)
let of_entries_pool pool store cfg entries =
  let sink = Store.sink store in
  let entries_arr = Array.of_list entries in
  let assignment =
    Telemetry.with_span sink "commit.parallel" (fun () ->
        Pool.map pool
          (fun (k, _) -> bucket_of_hash cfg (Hash.of_string_quiet k))
          entries_arr)
  in
  Array.iter (fun (k, _) -> Hash.note_digest (String.length k)) entries_arr;
  let buckets = Array.make cfg.capacity [] in
  Array.iteri
    (fun i kv -> buckets.(assignment.(i)) <- kv :: buckets.(assignment.(i)))
    entries_arr;
  let staged_leaves =
    Telemetry.with_span sink "commit.parallel" (fun () ->
        Pool.map pool
          (fun lst -> Store.stage_quiet (encode_bucket (sorted_bucket lst)))
          buckets)
  in
  note_and_put store staged_leaves;
  if Telemetry.enabled sink then begin
    Telemetry.incr sink "parallel.maps";
    Telemetry.incr sink
      ~by:(Array.length entries_arr + Array.length staged_leaves)
      "parallel.tasks";
    Telemetry.incr sink ~by:(Array.length staged_leaves) "parallel.nodes"
  end;
  let leaves = Array.map (fun s -> s.Store.digest) staged_leaves in
  { store;
    cfg;
    root = build_up_pool pool store cfg leaves;
    counts = level_counts cfg }

let of_entries ?pool store cfg entries =
  match pool with
  | None -> of_entries_seq store cfg entries
  | Some pool -> of_entries_pool pool store cfg entries

(* --- traversal ----------------------------------------------------------- *)

let iter t f =
  let rec go h =
    match get t.store h with
    | Bucket entries -> Array.iter (fun (k, v) -> f k v) entries
    | Internal children -> Array.iter go children
  in
  go t.root

let to_list t =
  let acc = ref [] in
  iter t (fun k v -> acc := (k, v) :: !acc);
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

let cardinal t =
  let n = ref 0 in
  iter t (fun _ _ -> incr n);
  !n

(* --- diff ----------------------------------------------------------------- *)

let diff t1 t2 =
  if t1.cfg <> t2.cfg then
    invalid_arg "Mbt.diff: instances have different configurations";
  let rec go h1 h2 acc =
    if Hash.equal h1 h2 then acc
    else
      match (get t1.store h1, get t2.store h2) with
      | Bucket e1, Bucket e2 ->
          List.rev_append
            (Kv.diff_sorted (Array.to_list e1) (Array.to_list e2))
            acc
      | Internal c1, Internal c2 ->
          let acc = ref acc in
          for i = 0 to max (Array.length c1) (Array.length c2) - 1 do
            acc := go c1.(i) c2.(i) !acc
          done;
          !acc
      | _ -> invalid_arg "Mbt.diff: shape mismatch"
  in
  List.sort
    (fun (a : Kv.diff_entry) (b : Kv.diff_entry) ->
      String.compare a.key b.key)
    (go t1.root t2.root [])

let merge t1 t2 ~policy =
  let diffs = diff t1 t2 in
  let conflicts = ref [] in
  let ops =
    List.filter_map
      (fun { Kv.key; left; right } ->
        match (left, right) with
        | _, None -> None
        | None, Some rv -> Some (Kv.Put (key, rv))
        | Some lv, Some rv -> (
            match Kv.merge_values policy key lv rv with
            | Ok v -> if String.equal v lv then None else Some (Kv.Put (key, v))
            | Error c ->
                conflicts := c :: !conflicts;
                None))
      diffs
  in
  match !conflicts with
  | [] -> Ok (batch t1 ops)
  | cs -> Error (List.rev cs)

(* --- proofs ---------------------------------------------------------------- *)

let prove t key =
  let b = bucket_index t.cfg key in
  let d = depth t in
  let rec go h level acc =
    let bytes = Store.get t.store h in
    let acc = bytes :: acc in
    match decode bytes with
    | Bucket entries -> (scan_bucket entries key, acc)
    | Internal children ->
        let idx_below =
          let rec div v k = if k = 0 then v else div (v / t.cfg.fanout) (k - 1) in
          div b (level - 1)
        in
        go children.(idx_below mod t.cfg.fanout) (level - 1) acc
  in
  let value, rev_nodes = go t.root d [] in
  { Proof.key; value; nodes = List.rev rev_nodes }

let verify_proof cfg ~root (proof : Proof.t) =
  let b = bucket_index cfg (proof.key : string) in
  let counts = level_counts cfg in
  let d = Array.length counts - 1 in
  let rec go expected level nodes =
    match nodes with
    | [] -> false
    | bytes :: rest ->
        Hash.equal (Hash.of_string bytes) expected
        &&
        (match decode bytes with
        | exception _ -> false
        | Bucket entries ->
            level = 0 && rest = [] && scan_bucket entries proof.key = proof.value
        | Internal children ->
            level > 0
            &&
            let idx_below =
              let rec div v k = if k = 0 then v else div (v / cfg.fanout) (k - 1) in
              div b (level - 1)
            in
            let slot = idx_below mod cfg.fanout in
            slot < Array.length children && go children.(slot) (level - 1) rest)
  in
  go root d proof.nodes

(* --- multiproofs ------------------------------------------------------------ *)

(* See the note in Mpt: the batched [walk_groups] with recording/replaying
   fetches.  The MBT root is never null (an empty tree is a full frame of
   empty buckets), so absence claims always carry the whole root→bucket
   path — the bucket that omits the key is the witness. *)

let prove_many t keys =
  let keys = List.sort_uniq String.compare keys in
  if keys = [] then { Multiproof.claims = []; nodes = [] }
  else begin
    let fetch_bytes, recorded = Multiproof.recorder ~get:(Store.get t.store) in
    let found = Hashtbl.create (List.length keys) in
    walk_groups t.cfg
      ~fetch:(fun h -> decode (fetch_bytes h))
      t.root (depth t)
      (groups_of_keys t.cfg keys)
      found;
    { Multiproof.claims = List.map (fun k -> (k, Hashtbl.find_opt found k)) keys;
      nodes = recorded () }
  end

let verify_many cfg ~root (mp : Multiproof.t) =
  if not (Multiproof.well_formed mp) then false
  else if mp.claims = [] then mp.nodes = []
  else begin
    let fetch_bytes, finished = Multiproof.consumer mp.nodes in
    let fetch h =
      match decode (fetch_bytes h) with
      | node -> node
      | exception Multiproof.Rejected -> raise Multiproof.Rejected
      | exception _ -> raise Multiproof.Rejected
    in
    let keys = Multiproof.keys mp in
    let found = Hashtbl.create (List.length keys) in
    let depth = Array.length (level_counts cfg) - 1 in
    match
      walk_groups cfg ~fetch root depth (groups_of_keys cfg keys) found
    with
    | () ->
        finished ()
        && List.for_all
             (fun (k, claimed) -> Hashtbl.find_opt found k = claimed)
             mp.claims
    | exception _ -> false
  end

(* --- generic ----------------------------------------------------------------- *)

(* Telemetry probes: see the note in Mpt.generic — observation only, no
   effect on hashing. *)
let probe t name f = Telemetry.probe (Store.sink t.store) name f

let rec generic ?pool t =
  { Generic.name = "mbt";
    store = t.store;
    root = t.root;
    lookup = (fun k -> probe t "mbt.lookup" (fun () -> lookup t k));
    get_many = (fun ks -> probe t "mbt.get_many" (fun () -> get_many t ks));
    path_length = path_length t;
    batch =
      (fun ops -> generic ?pool (probe t "mbt.batch" (fun () -> batch ?pool t ops)));
    bulk_load =
      (fun entries ->
        generic ?pool
          (probe t "mbt.bulk_load" (fun () -> of_entries ?pool t.store t.cfg entries)));
    to_list = (fun () -> to_list t);
    cardinal = (fun () -> cardinal t);
    diff =
      (fun other ->
        probe t "mbt.diff" (fun () -> diff t (of_root t.store t.cfg other)));
    merge =
      (fun policy other ->
        match merge t (of_root t.store t.cfg other) ~policy with
        | Ok m -> Ok (generic ?pool m)
        | Error cs -> Error cs);
    prove = (fun k -> probe t "mbt.prove" (fun () -> prove t k));
    verify = (fun ~root proof -> verify_proof t.cfg ~root proof);
    prove_many = (fun ks -> probe t "mbt.prove_many" (fun () -> prove_many t ks));
    verify_many = (fun ~root mp -> verify_many t.cfg ~root mp);
    reopen = (fun r -> generic ?pool (of_root t.store t.cfg r));
    range =
      (fun ~lo ~hi ->
        (* MBT hashes keys into buckets: no key order to prune by, so a
           range is a filtered full scan. *)
        List.filter
          (fun (k, _) ->
            (match lo with None -> true | Some l -> String.compare k l >= 0)
            && match hi with None -> true | Some h -> String.compare k h <= 0)
          (to_list t));
    scan =
      (fun ~lo ~hi ->
        (* The paper's Section 5 verdict made typed: a hash-bucketed
           structure cannot stream in key order without materializing and
           sorting everything, which is exactly what a streaming scan
           promises not to do.  Callers wanting the O(N) answer anyway
           still have [range]. *)
        ignore lo;
        ignore hi;
        raise (Generic.Unsupported "mbt")) }
