(** Merkle Bucket Tree (Section 3.4.2) — a Merkle tree over a fixed hash
    table, as in Hyperledger Fabric 0.6.

    Records hash into one of [capacity] buckets (sorted within each bucket);
    a complete [fanout]-ary Merkle tree of hashes sits on top.  [capacity]
    and [fanout] are fixed for the lifetime of the index, so the tree shape
    never changes — only node contents do.  Lookups compute the bucket index
    from the key hash and derive the root-to-leaf path arithmetically.

    The structure is trivially structurally invariant (a record's position
    depends only on its key), but buckets grow linearly with N/B, which is
    what makes its update cost O(log_m B + N/B). *)

open Siri_crypto
open Siri_core
module Store = Siri_store.Store

type config = { capacity : int;  (** number of buckets, B *) fanout : int }

val config : ?capacity:int -> ?fanout:int -> unit -> config
(** Defaults: [capacity = 1024], [fanout = 2] (Hyperledger 0.6 shape). *)

type t

val empty : Store.t -> config -> t
(** Builds the complete tree of empty buckets (all shared — empty buckets
    are byte-identical). *)

val of_root : Store.t -> config -> Hash.t -> t
val root : t -> Hash.t
val store : t -> Store.t
val conf : t -> config

val bucket_index : config -> Kv.key -> int
(** hash(key) mod B — which bucket a key lives in. *)

val lookup : t -> Kv.key -> Kv.value option

val get_many : t -> Kv.key list -> (Kv.key * Kv.value option) list
(** Batched point lookups in one walk: keys are grouped by bucket and the
    group set descends level by level, so shared internal nodes (always
    including the root) are decoded once per batch.  One result pair per
    input key, in input order; equivalent to
    [List.map (fun k -> (k, lookup t k))]. *)

val path_length : t -> Kv.key -> int

(** Lookup split into its two phases so that benchmarks can time them
    separately (Figure 13): *)

type bucket
(** A decoded leaf bucket. *)

val load_bucket : t -> Kv.key -> bucket
(** Traverse the tree and fetch + decode the bucket — the "load" phase. *)

val scan_bucket : bucket -> Kv.key -> Kv.value option
(** Binary search within the bucket — the "scan" phase. *)

val bucket_size : bucket -> int

val insert : t -> Kv.key -> Kv.value -> t
val remove : t -> Kv.key -> t

val batch : ?pool:Siri_parallel.Pool.t -> t -> Kv.op list -> t
(** Groups ops by bucket so each touched path is rewritten once.  With
    [pool], the commit is rebuilt level by level: dirty buckets and their
    affected ancestors are encoded and hashed on the pool (each node
    exactly once, vs. up to [fanout] times for the sequential per-path
    fold) and installed in deterministic index order — the resulting root
    is identical for any domain count. *)

val of_entries : ?pool:Siri_parallel.Pool.t -> Store.t -> config -> (Kv.key * Kv.value) list -> t
(** Bulk build: fill all buckets, then hash bottom-up once.  With [pool],
    key digesting, bucket encoding and the internal levels fan out over
    the pool; the root, put sequence and metering totals are identical to
    the sequential build. *)

val to_list : t -> (Kv.key * Kv.value) list
(** Sorted by key (buckets are collected and then sorted — MBT has no global
    key order). *)

val cardinal : t -> int
val iter : t -> (Kv.key -> Kv.value -> unit) -> unit

val diff : t -> t -> Kv.diff_entry list
(** Positional diff: corresponding subtrees are compared by hash and pruned
    when equal.  Both instances must share the same [config]. *)

val merge : t -> t -> policy:Kv.merge_policy -> (t, Kv.conflict list) result

val prove : t -> Kv.key -> Proof.t
val verify_proof : config -> root:Hash.t -> Proof.t -> bool

val prove_many : t -> Kv.key list -> Multiproof.t
(** Batched proof over a key set in one bucket-group walk (see
    {!Siri_mpt.Mpt.prove_many} for the shared discipline).  The MBT root is
    never null, so absence claims always carry the root→bucket path — the
    bucket that omits the key is the witness. *)

val verify_many : config -> root:Hash.t -> Multiproof.t -> bool
(** Store-independent replay of the proving walk over the supplied
    deduplicated nodes; needs the [config] to recompute bucket indices
    and tree depth. *)

val generic : ?pool:Siri_parallel.Pool.t -> t -> Generic.t
(** Package as a uniform SIRI instance.  With [pool], [batch] and
    [bulk_load] run through the parallel commit pipeline. *)
