module Hash = Siri_crypto.Hash
module Wire = Siri_codec.Wire
module Store = Siri_store.Store

let magic = "SIRIPACKIDX1"

type entry = { seg : int; off : int; len : int }

type t = {
  segments : (int * int) list;
  entries : (Hash.t * entry) list;
}

let of_table ~segments tbl =
  let entries = Hash.Table.fold (fun h e acc -> (h, e) :: acc) tbl [] in
  { segments = List.sort (fun (a, _) (b, _) -> compare a b) segments;
    entries = List.sort (fun (a, _) (b, _) -> Hash.compare a b) entries }

let encode t =
  let w = Wire.Writer.create ~capacity:(64 + (48 * List.length t.entries)) () in
  Wire.Writer.raw w magic;
  Wire.Writer.varint w (List.length t.segments);
  List.iter
    (fun (id, covered) ->
      Wire.Writer.varint w id;
      Wire.Writer.varint w covered)
    t.segments;
  Wire.Writer.varint w (List.length t.entries);
  List.iter
    (fun (h, e) ->
      Wire.Writer.hash w h;
      Wire.Writer.varint w e.seg;
      Wire.Writer.varint w e.off;
      Wire.Writer.varint w e.len)
    t.entries;
  let body = Wire.Writer.contents w in
  body ^ Hash.to_raw (Hash.of_string body)

(* Sortedness is re-verified on decode: an index that parses but is not
   canonical could only come from a foreign writer, and trusting it would
   break the rebuild-equivalence oracle. *)
let decode blob =
  let blen = String.length blob in
  let mlen = String.length magic in
  if blen < mlen + Hash.size then Error (`Malformed "index too short")
  else if String.sub blob 0 mlen <> magic then
    Error (`Malformed "bad index magic")
  else begin
    let body_len = blen - Hash.size in
    let digest = Hash.of_raw (String.sub blob body_len Hash.size) in
    if not (Hash.equal digest (Hash.of_substring blob ~off:0 ~len:body_len))
    then Error (`Malformed "index checksum mismatch")
    else
      match
        let r = Wire.Reader.of_substring blob ~off:mlen ~len:(body_len - mlen) in
        let nsegs = Wire.Reader.varint r in
        let segments =
          List.init nsegs (fun _ ->
              let id = Wire.Reader.varint r in
              let covered = Wire.Reader.varint r in
              (id, covered))
        in
        let nentries = Wire.Reader.varint r in
        let entries =
          List.init nentries (fun _ ->
              let h = Wire.Reader.hash r in
              let seg = Wire.Reader.varint r in
              let off = Wire.Reader.varint r in
              let len = Wire.Reader.varint r in
              (h, { seg; off; len }))
        in
        if not (Wire.Reader.at_end r) then failwith "trailing bytes";
        let rec ascending cmp = function
          | a :: (b :: _ as rest) ->
              cmp a b < 0 && ascending cmp rest
          | _ -> true
        in
        if
          not
            (ascending (fun (a, _) (b, _) -> compare a b) segments
            && ascending (fun (a, _) (b, _) -> Hash.compare a b) entries)
        then failwith "non-canonical order";
        { segments; entries }
      with
      | t -> Ok t
      | exception Wire.Reader.Truncated -> Error (`Malformed "index truncated")
      | exception Failure msg -> Error (`Malformed msg)
  end

let save ?(sync = true) path t =
  let blob = encode t in
  Store.write_file_atomic ~sync path (fun oc -> output_string oc blob)

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> None
  | blob -> ( match decode blob with Ok t -> Some t | Error _ -> None)
