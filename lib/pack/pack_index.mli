(** The persisted pack offset index: hash -> (segment, offset, length).

    The index is a pure acceleration structure — every byte of it can be
    rebuilt by scanning the live segments, and the encoding is {e
    canonical} (segments ascending by id, entries ascending by raw hash,
    SHA-256 trailer over everything before it), so a rebuild from
    undamaged segments is byte-identical to the persisted file.  That
    identity is the property test's oracle: a corrupt or missing index is
    never trusted, only discarded and rebuilt.

    Each segment carries its {e covered} length — the file prefix the
    entries describe.  On reopen, a file longer than its covered length
    has a tail appended after the last index sync (scan and adopt it); a
    file shorter than it means the index over-describes reality (rebuild
    everything). *)

module Hash = Siri_crypto.Hash

type entry = { seg : int; off : int; len : int }
(** [len] is the full frame length, so a node read is one positional read
    of [len] bytes at [off]. *)

type t = {
  segments : (int * int) list;  (** (id, covered bytes), ascending by id *)
  entries : (Hash.t * entry) list;  (** ascending by raw hash *)
}

val of_table : segments:(int * int) list -> entry Hash.Table.t -> t
(** Canonicalise: sorts both lists. *)

val encode : t -> string
(** The canonical bytes, checksum trailer included. *)

val decode : string -> (t, [ `Malformed of string ]) result
(** Verify the trailer and parse.  Any damage — wrong magic, bad
    checksum, truncation, non-canonical order — is [`Malformed]. *)

val save : ?sync:bool -> string -> t -> unit
(** Atomic tmp-rename write ({!Siri_store.Store.write_file_atomic});
    with [sync] (default true) the parent directory is fsynced too. *)

val load : string -> t option
(** [None] when the file is missing or fails {!decode} — the caller
    rebuilds from segments. *)
