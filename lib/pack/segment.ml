module Hash = Siri_crypto.Hash
module Wire = Siri_codec.Wire
module Frame = Siri_codec.Frame

let magic = "SIRIPACKSEG1"

let filename id = Printf.sprintf "seg-%06d.pack" id

let id_of_filename name =
  let plen = 4 and slen = 5 in
  if String.length name > plen + slen
     && String.sub name 0 plen = "seg-"
     && Filename.check_suffix name ".pack"
  then
    let digits = String.sub name plen (String.length name - plen - slen) in
    if String.for_all (fun c -> c >= '0' && c <= '9') digits then
      int_of_string_opt digits
    else None
  else None

let encode_record h bytes children =
  let w = Wire.Writer.create ~capacity:(String.length bytes + 96) () in
  Wire.Writer.hash w h;
  Wire.Writer.str w bytes;
  Wire.Writer.varint w (List.length children);
  List.iter (Wire.Writer.hash w) children;
  Frame.encode (Wire.Writer.contents w)

let decode_record blob ~off ~len =
  let r = Wire.Reader.of_substring blob ~off ~len in
  let h = Wire.Reader.hash r in
  let bytes = Wire.Reader.str r in
  let n = Wire.Reader.varint r in
  let children = List.init n (fun _ -> Wire.Reader.hash r) in
  (h, bytes, children)

type scanned = {
  records : (Hash.t * int * int) list;
  length : int;
  clamped : int;
}

(* The hash field is the first 32 bytes of the payload — index rebuilds
   need only it, so records are not fully decoded here. *)
let record_hash blob ~payload_off =
  Hash.of_raw (String.sub blob payload_off Hash.size)

let scan blob =
  let blen = String.length blob in
  let mlen = String.length magic in
  let prefix = min blen mlen in
  if String.sub blob 0 prefix <> String.sub magic 0 prefix then
    Error (`Tampered 0)
  else if blen < mlen then
    (* A torn segment creation — clamp to empty; the opener rewrites the
       magic.  (A registered segment always had its magic fsynced, so
       this arises only from external truncation.) *)
    Ok { records = []; length = 0; clamped = blen }
  else begin
    let records = ref [] in
    let rec go pos =
      match Frame.step blob ~pos with
      | Frame.End -> Ok { records = List.rev !records; length = pos; clamped = 0 }
      | Frame.Torn n ->
          Ok { records = List.rev !records; length = pos; clamped = n }
      | Frame.Corrupt -> Error (`Tampered pos)
      | Frame.Frame { payload_off; payload_len; next } ->
          if payload_len < Hash.size then Error (`Tampered pos)
          else begin
            records :=
              (record_hash blob ~payload_off, pos, next - pos) :: !records;
            go next
          end
    in
    go mlen
  end
