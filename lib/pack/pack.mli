(** The log-structured pack-file store backend.

    A pack directory holds append-only {!Segment} files, a persisted
    {!Pack_index} (so reopen is O(index), not O(data)), and a small
    {e manifest} naming the live segment set — the single atomic commit
    point for compaction.  Durability discipline, file by file:

    - {b segments} are append-only; a crashed append leaves a torn tail
      that reopen clamps (same prefix semantics as the WAL journal).
      A mid-segment checksum mismatch is [`Tampered] — refused, never
      misread.
    - {b index} is advisory: missing, corrupt, or stale-beyond-the-file
      copies are discarded and rebuilt by scanning the segments; the
      rebuilt bytes are identical to an undamaged persisted index.
      A file {e longer} than its indexed coverage only has its tail
      scanned and adopted.
    - {b manifest} is replaced atomically (tmp + rename + directory
      fsync).  Compaction writes new segments and a new index first, then
      flips the manifest: a crash at any point leaves the old or the new
      segment set, never a mix.  Segment files not named by the manifest
      are swept on open.

    Group fsync: appends are buffered; {!flush} [~sync:false] pushes them
    to the OS so the WAL's single commit fsync remains the per-commit
    durability point (replay regenerates any node the pack lost), while
    checkpoints call {!flush} [~sync:true] + {!sync_index} before the
    WAL manifest flips. *)

module Hash = Siri_crypto.Hash
module Store = Siri_store.Store
module Fault = Siri_fault.Fault
module Telemetry = Siri_telemetry.Telemetry

type t

type recovery = {
  clamped_bytes : int;  (** torn tail bytes truncated away, all segments *)
  index_rebuilt : bool;  (** persisted index was missing/corrupt/stale *)
  adopted : int;  (** records adopted by scanning un-indexed segment tails *)
  swept : int;  (** orphan segment files deleted (crashed compaction) *)
}

val open_ :
  ?segment_target:int ->
  ?retry_attempts:int ->
  ?retry_backoff_s:float ->
  ?sink:Telemetry.sink ->
  string ->
  (t * recovery, [ `Tampered of string ]) result
(** Open (creating if needed) the pack directory.  [segment_target]
    (default 8 MiB) caps a segment before rolling to a fresh one.
    Transient read faults are retried [retry_attempts] times (default 3)
    with exponential [retry_backoff_s] (default 0 — tests inject their
    own clock).  [`Tampered] is unrecoverable damage: a corrupt manifest,
    a manifest naming a missing segment, or a mid-segment checksum
    mismatch; the message names the file and offset. *)

val close : t -> unit
(** {!flush} [~sync:true], {!sync_index}, release descriptors. *)

val dir : t -> string
val count : t -> int
val stored_bytes : t -> int
(** Payload bytes live in the index (frame headers excluded). *)

val segment_ids : t -> int list
(** Live segment ids, ascending; the last one is the active segment. *)

val append : t -> (Hash.t * string * Hash.t list) list -> unit
(** Append records for the nodes not already present (content-addressed
    dedup), rolling segments as needed.  Buffered — call {!flush}. *)

val flush : ?sync:bool -> t -> unit
(** Push buffered appends to the OS; with [sync] (default true) fsync the
    active segment — one fsync for the whole batch ([pack.fsync]). *)

val sync_index : t -> unit
(** Persist the offset index (atomic, fsynced) if it changed. *)

val get : t -> Hash.t -> (string * Hash.t list) option
(** Verified positional read.  [None] when absent.  Raises
    {!Store.Tampered} when the frame or node digest fails — injected
    damage can never surface as a wrong read — and {!Store.Transient}
    when injected transients outlast the retry budget. *)

val mem : t -> Hash.t -> bool

val iter : t -> (Hash.t -> string -> Hash.t list -> unit) -> unit
(** Verified sweep over every indexed record; raises like {!get}. *)

val scrub : t -> Hash.t list
(** Re-read and verify every indexed record (gate bypassed), returning
    the hashes whose stored bytes fail verification, sorted. *)

val compact :
  ?on_step:(string -> unit) -> t -> live:Hash.Set.t -> Hash.t list
(** Rewrite the records of [live] nodes into fresh segments (ids above
    every existing one), write the new index, atomically flip the
    manifest, then delete the old segments; returns the dropped hashes.
    [on_step] is called at the kill-points ["begin"],
    ["segments-written"], ["index-written"], ["manifest"], ["cleanup"] —
    crash tests raise from it; a crash strictly before ["manifest"]
    preserves the old set, at or after it the new set. *)

val set_read_gate : t -> Fault.io_gate option -> unit
(** Route every raw segment read through a fault-injection gate. *)

val backend : t -> Store.backend
(** The {!Store.backend} view: write-through appends, cold reads,
    scrub merge, GC-driven compaction. *)

val attach : t -> Store.t -> unit
(** [Store.set_backend store (Some (backend t))]. *)
