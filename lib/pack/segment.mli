(** Pack segment files: append-only logs of checksummed node records.

    A segment is [magic | frame*] where each frame
    ({!Siri_codec.Frame}) wraps one node record

    {v hash(32) | varint |bytes| | bytes | varint n | child-hash(32) * n v}

    The frame digest covers the whole record, so a mid-file bit flip is
    detected before any field is trusted; the node hash inside the record
    lets readers re-verify content addressing end to end.  Like the WAL
    journal, a segment has prefix semantics: a crashed append leaves a
    torn tail that scanners clamp, while a checksum mismatch {e before}
    the tail is refused as tampering — a wrong read is impossible. *)

module Hash = Siri_crypto.Hash

val magic : string
(** First bytes of every segment file. *)

val filename : int -> string
(** [filename id] is the basename of segment [id] ("seg-<id>.pack"). *)

val id_of_filename : string -> int option
(** Inverse of {!filename}; [None] for anything else. *)

val encode_record : Hash.t -> string -> Hash.t list -> string
(** The framed record for one node — the bytes appended to a segment. *)

val decode_record : string -> off:int -> len:int -> Hash.t * string * Hash.t list
(** Decode the {e payload} slice of a verified frame (not including the
    frame header).  Raises [Siri_codec.Wire.Reader.Truncated] on
    malformed bytes — unreachable for a frame whose digest verified. *)

type scanned = {
  records : (Hash.t * int * int) list;
      (** (node hash, frame offset, frame length) in file order *)
  length : int;  (** valid prefix length — clamp the file to this *)
  clamped : int;  (** torn trailing bytes past [length] *)
}

val scan : string -> (scanned, [ `Tampered of int ]) result
(** Classify a whole segment blob.  A torn tail (including a torn or
    missing magic) is clamped into [clamped]; a checksum mismatch on a
    complete frame, or a wrong magic, is [`Tampered offset]. *)
