module Hash = Siri_crypto.Hash
module Wire = Siri_codec.Wire
module Frame = Siri_codec.Frame
module Store = Siri_store.Store
module Fault = Siri_fault.Fault
module Telemetry = Siri_telemetry.Telemetry

type t = {
  dir : string;
  segment_target : int;
  retry_attempts : int;
  retry_backoff_s : float;
  sink : Telemetry.sink;
  index : Pack_index.entry Hash.Table.t;
  lens : (int, int) Hashtbl.t;  (* live segment id -> valid length *)
  fds : (int, Unix.file_descr) Hashtbl.t;  (* read descriptors, lazy *)
  read_mutex : Mutex.t;
      (* Segment reads share one descriptor per segment, positioned with
         [lseek] — two concurrent readers would race the seek (the wire
         server serves sessions from multiple threads, and [Unix.read]
         releases the runtime lock).  The critical section is one seek +
         one bounded read, so contention stays negligible. *)
  mutable generation : int;
  mutable active : int;
  mutable chan : out_channel;
  mutable active_len : int;
  mutable dirty : bool;  (* bytes in the channel buffer *)
  mutable os_dirty : bool;  (* bytes flushed to the OS but not fsynced *)
  mutable index_dirty : bool;
  mutable bytes : int;  (* payload bytes live in the index *)
  mutable gate : Fault.io_gate option;
}

type recovery = {
  clamped_bytes : int;
  index_rebuilt : bool;
  adopted : int;
  swept : int;
}

let magic_len = String.length Segment.magic
let seg_path dir id = Filename.concat dir (Segment.filename id)
let index_path dir = Filename.concat dir "index"
let manifest_path dir = Filename.concat dir "manifest"

(* --- manifest ---------------------------------------------------------------- *)

let manifest_magic = "SIRIPACKMANIFEST1"

let encode_manifest ~generation ids =
  let w = Wire.Writer.create () in
  Wire.Writer.raw w manifest_magic;
  Wire.Writer.varint w generation;
  Wire.Writer.varint w (List.length ids);
  List.iter (Wire.Writer.varint w) (List.sort compare ids);
  let body = Wire.Writer.contents w in
  body ^ Hash.to_raw (Hash.of_string body)

let decode_manifest blob =
  let blen = String.length blob in
  let mlen = String.length manifest_magic in
  if blen < mlen + Hash.size then Error (`Malformed "manifest too short")
  else if String.sub blob 0 mlen <> manifest_magic then
    Error (`Malformed "bad manifest magic")
  else begin
    let body_len = blen - Hash.size in
    let digest = Hash.of_raw (String.sub blob body_len Hash.size) in
    if not (Hash.equal digest (Hash.of_substring blob ~off:0 ~len:body_len))
    then Error (`Malformed "manifest checksum mismatch")
    else
      match
        let r =
          Wire.Reader.of_substring blob ~off:mlen ~len:(body_len - mlen)
        in
        let generation = Wire.Reader.varint r in
        let n = Wire.Reader.varint r in
        let ids = List.init n (fun _ -> Wire.Reader.varint r) in
        if not (Wire.Reader.at_end r) then failwith "trailing bytes";
        (generation, ids)
      with
      | m -> Ok m
      | exception Wire.Reader.Truncated ->
          Error (`Malformed "manifest truncated")
      | exception Failure msg -> Error (`Malformed msg)
  end

(* The manifest flip is the commit point for every segment-set change, so
   it is always written atomically and fsynced through to the directory. *)
let save_manifest dir ~generation ids =
  let blob = encode_manifest ~generation ids in
  Store.write_file_atomic ~sync:true (manifest_path dir) (fun oc ->
      output_string oc blob)

(* --- raw file helpers -------------------------------------------------------- *)

let read_whole path = In_channel.with_open_bin path In_channel.input_all

let read_from path ~off =
  In_channel.with_open_bin path (fun ic ->
      In_channel.seek ic (Int64.of_int off);
      In_channel.input_all ic)

let file_len path = (Unix.stat path).Unix.st_size

(* A fresh segment file is magic-only, fsynced, and its directory entry
   fsynced, all before the manifest names it — a crash in between leaves
   an orphan file the next open sweeps. *)
let create_segment_file dir id =
  let path = seg_path dir id in
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 path
  in
  output_string oc Segment.magic;
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc);
  close_out oc;
  Store.fsync_dir dir

let open_append dir id =
  open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 (seg_path dir id)

let rec mkdir_p path =
  if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* --- reads ------------------------------------------------------------------- *)

let seg_fd t id =
  match Hashtbl.find_opt t.fds id with
  | Some fd -> fd
  | None ->
      let fd = Unix.openfile (seg_path t.dir id) [ Unix.O_RDONLY ] 0 in
      Hashtbl.replace t.fds id fd;
      fd

let pread t id ~off ~len =
  Mutex.lock t.read_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.read_mutex)
    (fun () ->
      let fd = seg_fd t id in
      ignore (Unix.lseek fd off Unix.SEEK_SET : int);
      let buf = Bytes.create len in
      let rec go p =
        if p >= len then len
        else
          match Unix.read fd buf p (len - p) with 0 -> p | n -> go (p + n)
      in
      let got = go 0 in
      if got = len then Bytes.unsafe_to_string buf else Bytes.sub_string buf 0 got)

let flush_buffered t =
  if t.dirty then begin
    flush t.chan;
    t.dirty <- false;
    t.os_dirty <- true
  end

(* Decode and verify one indexed record: the frame digest authenticates
   the bytes on disk, and re-hashing the payload re-checks content
   addressing end to end.  Every failure mode — short read, flipped bit,
   truncated frame — lands in [Store.Tampered], never a wrong read. *)
let read_entry t ?(use_gate = true) h (e : Pack_index.entry) =
  if e.seg = t.active then flush_buffered t;
  let blob = pread t e.seg ~off:e.off ~len:e.len in
  let blob =
    match t.gate with
    | Some g when use_gate -> Fault.gate_read g h blob
    | _ -> blob
  in
  match Frame.step blob ~pos:0 with
  | Frame.Frame { payload_off; payload_len; next }
    when next = String.length blob -> (
      match Segment.decode_record blob ~off:payload_off ~len:payload_len with
      | h', bytes, children
        when Hash.equal h' h && Hash.equal (Hash.of_string bytes) h ->
          (bytes, children)
      | _ -> raise (Store.Tampered h)
      | exception Wire.Reader.Truncated -> raise (Store.Tampered h))
  | _ -> raise (Store.Tampered h)

let get t h =
  match Hash.Table.find_opt t.index h with
  | None -> None
  | Some e -> (
      match
        Fault.with_retry ~attempts:t.retry_attempts
          ~backoff_s:t.retry_backoff_s ~sink:t.sink (fun () ->
            read_entry t h e)
      with
      | Ok v ->
          Telemetry.incr t.sink "pack.read";
          Some v
      | Error (`Transient _) -> raise (Store.Transient h)
      | Error (`Missing _) -> raise (Store.Missing h)
      | Error (`Tampered _ | `Malformed _) -> raise (Store.Tampered h))

let mem t h = Hash.Table.mem t.index h

let sorted_entries t =
  List.sort
    (fun (a, _) (b, _) -> Hash.compare a b)
    (Hash.Table.fold (fun h e acc -> (h, e) :: acc) t.index [])

let iter t f =
  List.iter
    (fun (h, e) ->
      let bytes, children =
        match
          Fault.with_retry ~attempts:t.retry_attempts
            ~backoff_s:t.retry_backoff_s ~sink:t.sink (fun () ->
              read_entry t h e)
        with
        | Ok v -> v
        | Error (`Transient _) -> raise (Store.Transient h)
        | Error _ -> raise (Store.Tampered h)
      in
      f h bytes children)
    (sorted_entries t)

let scrub t =
  List.filter_map
    (fun (h, e) ->
      match read_entry t ~use_gate:false h e with
      | _ -> None
      | exception Store.Tampered _ -> Some h
      | exception _ -> Some h)
    (sorted_entries t)

(* --- writes ------------------------------------------------------------------ *)

let live_ids t = List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.lens [])

let flush ?(sync = true) t =
  flush_buffered t;
  if sync && t.os_dirty then begin
    Unix.fsync (Unix.descr_of_out_channel t.chan);
    t.os_dirty <- false;
    Telemetry.incr t.sink "pack.fsync"
  end

let sync_index t =
  if t.index_dirty then begin
    flush_buffered t;
    Hashtbl.replace t.lens t.active t.active_len;
    let segments = Hashtbl.fold (fun id len acc -> (id, len) :: acc) t.lens [] in
    Pack_index.save ~sync:true (index_path t.dir)
      (Pack_index.of_table ~segments t.index);
    t.index_dirty <- false;
    Telemetry.incr t.sink "pack.index.sync"
  end

let roll t =
  (* Seal the active segment (its bytes must be durable before anything
     references the successor), then file-first/manifest-second. *)
  flush ~sync:true t;
  close_out t.chan;
  Hashtbl.replace t.lens t.active t.active_len;
  let id = t.active + 1 in
  create_segment_file t.dir id;
  t.generation <- t.generation + 1;
  save_manifest t.dir ~generation:t.generation (id :: live_ids t);
  Hashtbl.replace t.lens id magic_len;
  t.active <- id;
  t.chan <- open_append t.dir id;
  t.active_len <- magic_len;
  Telemetry.incr t.sink "pack.roll"

let append t nodes =
  List.iter
    (fun (h, bytes, children) ->
      if not (Hash.Table.mem t.index h) then begin
        let frame = Segment.encode_record h bytes children in
        let flen = String.length frame in
        if t.active_len + flen > t.segment_target && t.active_len > magic_len
        then roll t;
        output_string t.chan frame;
        Hash.Table.replace t.index h
          { Pack_index.seg = t.active; off = t.active_len; len = flen };
        t.active_len <- t.active_len + flen;
        t.bytes <- t.bytes + (flen - Frame.header_len);
        t.dirty <- true;
        t.index_dirty <- true;
        Telemetry.incr t.sink "pack.append"
      end)
    nodes

(* --- open / recovery --------------------------------------------------------- *)

let scan_failure id pos =
  `Tampered (Printf.sprintf "%s: checksum mismatch at offset %d" (Segment.filename id) pos)

(* Clamp a segment's torn tail on disk.  A tail torn inside the magic
   itself (external truncation of a fresh segment) clamps to empty and
   the magic is rewritten — the registered creation had fsynced it. *)
let clamp_segment dir id ~keep =
  let path = seg_path dir id in
  if keep >= magic_len then Unix.truncate path keep
  else begin
    let oc =
      open_out_gen
        [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
        0o644 path
    in
    output_string oc Segment.magic;
    close_out oc
  end

let full_rescan dir ids ~index ~lens =
  (* Rebuild the index by scanning every live segment, ascending; the
     first record for a hash wins, matching the append-time dedup. *)
  let clamped = ref 0 in
  let rec go = function
    | [] -> Ok ()
    | id :: rest -> (
        let path = seg_path dir id in
        match Segment.scan (read_whole path) with
        | Error (`Tampered pos) -> Error (scan_failure id pos)
        | Ok s ->
            if s.clamped > 0 then begin
              clamp_segment dir id ~keep:s.length;
              clamped := !clamped + s.clamped
            end;
            Hashtbl.replace lens id (max s.length magic_len);
            List.iter
              (fun (h, off, len) ->
                if not (Hash.Table.mem index h) then
                  Hash.Table.replace index h { Pack_index.seg = id; off; len })
              s.records;
            go rest)
  in
  Result.map (fun () -> !clamped) (go (List.sort compare ids))

let adopt_tail dir id ~covered ~index ~clamped ~adopted =
  (* The index is honest up to [covered]; scan and adopt what was
     appended after the last index sync. *)
  let tail = read_from (seg_path dir id) ~off:covered in
  let rec go pos =
    match Frame.step tail ~pos with
    | Frame.End -> Ok (covered + pos)
    | Frame.Torn n ->
        clamp_segment dir id ~keep:(covered + pos);
        clamped := !clamped + n;
        Ok (covered + pos)
    | Frame.Corrupt -> Error (scan_failure id (covered + pos))
    | Frame.Frame { payload_off; payload_len; next } ->
        if payload_len < Hash.size then Error (scan_failure id (covered + pos))
        else begin
          let h =
            Hash.of_raw (String.sub tail payload_off Hash.size)
          in
          if not (Hash.Table.mem index h) then begin
            Hash.Table.replace index h
              { Pack_index.seg = id; off = covered + pos; len = next - pos };
            incr adopted
          end;
          go next
        end
  in
  go 0

let load_index dir live =
  (* The persisted index is usable only if it describes a subset of the
     live segment set within each file's real length; anything else —
     missing, corrupt, or referencing a crashed compaction's segments —
     triggers a full rescan. *)
  match Pack_index.load (index_path dir) with
  | None -> None
  | Some idx ->
      let live_set = List.sort_uniq compare live in
      let ok_segs =
        List.for_all
          (fun (id, covered) ->
            List.mem id live_set
            && (covered = 0 || covered >= magic_len)
            && covered <= file_len (seg_path dir id))
          idx.segments
      in
      let covered_of id =
        match List.assoc_opt id idx.segments with Some c -> c | None -> 0
      in
      let ok_entries =
        ok_segs
        && List.for_all
             (fun (_, (e : Pack_index.entry)) ->
               List.mem e.seg live_set && e.off + e.len <= covered_of e.seg)
             idx.entries
      in
      if ok_entries then Some idx else None

let open_ ?(segment_target = 8 * 1024 * 1024) ?(retry_attempts = 3)
    ?(retry_backoff_s = 0.) ?(sink = Telemetry.null) dir =
  mkdir_p dir;
  let fresh = not (Sys.file_exists (manifest_path dir)) in
  if fresh then begin
    create_segment_file dir 0;
    save_manifest dir ~generation:0 [ 0 ]
  end;
  match decode_manifest (read_whole (manifest_path dir)) with
  | Error (`Malformed msg) -> Error (`Tampered ("manifest: " ^ msg))
  | Ok (generation, ids) -> (
      let ids = List.sort compare ids in
      (* Sweep segment files a crashed compaction or roll left behind. *)
      let swept = ref 0 in
      Array.iter
        (fun name ->
          match Segment.id_of_filename name with
          | Some id when not (List.mem id ids) ->
              Sys.remove (Filename.concat dir name);
              incr swept
          | _ -> ())
        (Sys.readdir dir);
      match
        List.find_opt (fun id -> not (Sys.file_exists (seg_path dir id))) ids
      with
      | Some id ->
          Error (`Tampered (Segment.filename id ^ ": missing live segment"))
      | None -> (
          let index = Hash.Table.create 1024 in
          let lens = Hashtbl.create 8 in
          let clamped = ref 0 in
          let adopted = ref 0 in
          let recovered =
            if fresh then begin
              Hashtbl.replace lens 0 magic_len;
              Ok false
            end
            else
              match load_index dir ids with
            | None ->
                Telemetry.incr sink "pack.open.rebuild";
                Result.map
                  (fun c ->
                    clamped := c;
                    true)
                  (full_rescan dir ids ~index ~lens)
            | Some idx ->
                List.iter
                  (fun (h, e) -> Hash.Table.replace index h e)
                  idx.entries;
                let covered_of id =
                  match List.assoc_opt id idx.segments with
                  | Some c -> c
                  | None -> 0
                in
                let rec go = function
                  | [] -> Ok false
                  | id :: rest -> (
                      let covered = covered_of id in
                      let flen = file_len (seg_path dir id) in
                      if covered = 0 && flen < magic_len then begin
                        (* torn creation of an unindexed segment *)
                        clamp_segment dir id ~keep:0;
                        clamped := !clamped + flen;
                        Hashtbl.replace lens id magic_len;
                        go rest
                      end
                      else if covered = 0 then
                        match Segment.scan (read_whole (seg_path dir id)) with
                        | Error (`Tampered pos) -> Error (scan_failure id pos)
                        | Ok s ->
                            if s.clamped > 0 then begin
                              clamp_segment dir id ~keep:s.length;
                              clamped := !clamped + s.clamped
                            end;
                            Hashtbl.replace lens id (max s.length magic_len);
                            List.iter
                              (fun (h, off, len) ->
                                if not (Hash.Table.mem index h) then begin
                                  Hash.Table.replace index h
                                    { Pack_index.seg = id; off; len };
                                  incr adopted
                                end)
                              s.records;
                            go rest
                      else if flen > covered then
                        match
                          adopt_tail dir id ~covered ~index ~clamped ~adopted
                        with
                        | Error e -> Error e
                        | Ok valid ->
                            Hashtbl.replace lens id valid;
                            go rest
                      else begin
                        Hashtbl.replace lens id covered;
                        go rest
                      end)
                in
                go ids
          in
          match recovered with
          | Error e -> Error e
          | Ok index_rebuilt ->
              let active = List.fold_left max 0 ids in
              let active_len =
                match Hashtbl.find_opt lens active with
                | Some l -> l
                | None -> magic_len
              in
              let bytes =
                Hash.Table.fold
                  (fun _ (e : Pack_index.entry) acc ->
                    acc + e.len - Frame.header_len)
                  index 0
              in
              Telemetry.incr sink ~by:!adopted "pack.open.adopted";
              if !clamped > 0 then
                Telemetry.incr sink ~by:!clamped "pack.clamp";
              let t =
                { dir;
                  segment_target = max (magic_len + 64) segment_target;
                  retry_attempts;
                  retry_backoff_s;
                  sink;
                  index;
                  lens;
                  fds = Hashtbl.create 8;
                  read_mutex = Mutex.create ();
                  generation;
                  active;
                  chan = open_append dir active;
                  active_len;
                  dirty = false;
                  os_dirty = false;
                  index_dirty = index_rebuilt || !adopted > 0 || !clamped > 0;
                  bytes;
                  gate = None }
              in
              Ok
                ( t,
                  { clamped_bytes = !clamped;
                    index_rebuilt;
                    adopted = !adopted;
                    swept = !swept } )))

let close t =
  flush ~sync:true t;
  sync_index t;
  close_out t.chan;
  Hashtbl.iter (fun _ fd -> Unix.close fd) t.fds;
  Hashtbl.reset t.fds

let dir t = t.dir
let count t = Hash.Table.length t.index
let stored_bytes t = t.bytes
let segment_ids t = live_ids t
let set_read_gate t gate = t.gate <- gate

(* --- compaction -------------------------------------------------------------- *)

let compact ?(on_step = ignore) t ~live =
  let dropped =
    Hash.Table.fold
      (fun h _ acc -> if Hash.Set.mem h live then acc else h :: acc)
      t.index []
  in
  if dropped = [] then []
  else begin
    (* Everything the rewrite will copy must be durable first. *)
    flush ~sync:true t;
    on_step "begin";
    let old_ids = live_ids t in
    let base = 1 + List.fold_left max t.active old_ids in
    (* Keep locality: walk old segments in id order, records in offset
       order, carrying live records into fresh segments. *)
    let kept =
      List.concat_map
        (fun id ->
          List.sort
            (fun ((_, a) : _ * Pack_index.entry) (_, b) -> compare a.off b.off)
            (Hash.Table.fold
               (fun h (e : Pack_index.entry) acc ->
                 if e.seg = id && Hash.Set.mem h live then (h, e) :: acc
                 else acc)
               t.index []))
        old_ids
    in
    let new_index = Hash.Table.create (List.length kept) in
    let new_lens = ref [] in
    let cur = Buffer.create t.segment_target in
    let cur_id = ref base in
    Buffer.add_string cur Segment.magic;
    let write_segment () =
      let id = !cur_id in
      let path = seg_path t.dir id in
      let oc =
        open_out_gen
          [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
          0o644 path
      in
      Buffer.output_buffer oc cur;
      Stdlib.flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc);
      close_out oc;
      new_lens := (id, Buffer.length cur) :: !new_lens;
      Buffer.clear cur;
      Buffer.add_string cur Segment.magic;
      incr cur_id
    in
    List.iter
      (fun (h, (e : Pack_index.entry)) ->
        (* Re-verify before carrying: compaction must not launder a
           corrupt record into a fresh segment.  The frame bytes are
           content-stable, so the verified slice is reused verbatim. *)
        ignore (read_entry t ~use_gate:false h e : string * Hash.t list);
        let frame = pread t e.seg ~off:e.off ~len:e.len in
        if Buffer.length cur + e.len > t.segment_target
           && Buffer.length cur > magic_len
        then write_segment ();
        Hash.Table.replace new_index h
          { Pack_index.seg = !cur_id; off = Buffer.length cur; len = e.len };
        Buffer.add_string cur frame)
      kept;
    write_segment ();
    Store.fsync_dir t.dir;
    on_step "segments-written";
    let new_lens = !new_lens in
    Pack_index.save ~sync:true (index_path t.dir)
      (Pack_index.of_table ~segments:new_lens new_index);
    on_step "index-written";
    t.generation <- t.generation + 1;
    save_manifest t.dir ~generation:t.generation (List.map fst new_lens);
    on_step "manifest";
    (* Committed: everything from here is cleanup. *)
    close_out t.chan;
    Hashtbl.iter (fun _ fd -> Unix.close fd) t.fds;
    Hashtbl.reset t.fds;
    List.iter
      (fun id -> try Sys.remove (seg_path t.dir id) with Sys_error _ -> ())
      old_ids;
    on_step "cleanup";
    Hash.Table.reset t.index;
    Hash.Table.iter (fun h e -> Hash.Table.replace t.index h e) new_index;
    Hashtbl.reset t.lens;
    List.iter (fun (id, len) -> Hashtbl.replace t.lens id len) new_lens;
    let active = List.fold_left (fun acc (id, _) -> max acc id) 0 new_lens in
    t.active <- active;
    t.active_len <- List.assoc active new_lens;
    t.chan <- open_append t.dir active;
    t.dirty <- false;
    t.os_dirty <- false;
    t.index_dirty <- false;
    t.bytes <-
      Hash.Table.fold
        (fun _ (e : Pack_index.entry) acc -> acc + e.len - Frame.header_len)
        t.index 0;
    Telemetry.incr t.sink "pack.compact";
    Telemetry.incr t.sink ~by:(List.length dropped) "pack.compact.dropped";
    List.sort Hash.compare dropped
  end

(* --- store backend ----------------------------------------------------------- *)

let backend t =
  { Store.backend_name = "pack";
    backend_read = (fun h -> get t h);
    backend_mem = (fun h -> mem t h);
    backend_write = (fun nodes -> append t nodes);
    backend_flush = (fun ~sync -> flush ~sync t);
    backend_corrupt = (fun () -> scrub t);
    backend_compact = (fun ~live -> compact t ~live);
    backend_count = (fun () -> count t);
    backend_bytes = (fun () -> stored_bytes t) }

let attach t store = Store.set_backend store (Some (backend t))
