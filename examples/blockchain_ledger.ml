(* A miniature blockchain ledger on the Merkle Patricia Trie — the paper's
   motivating application #1 (Section 1: crypto-currency wallets, Ethereum).

   Run with:  dune exec examples/blockchain_ledger.exe

   Each block carries a batch of RLP-encoded transactions; the MPT indexes
   transaction-hash -> transaction exactly as Ethereum does, and the block
   header records the trie root.  A light client verifies inclusion with a
   Merkle proof; a tampering full node is caught immediately. *)

open Siri_core
module Store = Siri_store.Store
module Mpt = Siri_mpt.Mpt
module Hash = Siri_crypto.Hash
module Ethereum = Siri_workload.Ethereum

type header = { number : int; tx_root : Hash.t; parent : Hash.t }

let header_hash h =
  Hash.of_string
    (Printf.sprintf "%d|%s|%s" h.number (Hash.to_raw h.tx_root)
       (Hash.to_raw h.parent))

let () =
  let store = Store.create () in

  (* Mine 20 blocks of 100 synthetic transactions each. *)
  let blocks = Ethereum.blocks ~txs_per_block:100 ~count:20 () in
  let chain, tries =
    List.fold_left
      (fun (chain, tries) block ->
        let trie = Mpt.of_entries store (Ethereum.entries_of_block block) in
        let parent =
          match chain with [] -> Hash.null | h :: _ -> header_hash h
        in
        let header =
          { number = block.Ethereum.number; tx_root = Mpt.root trie; parent }
        in
        (header :: chain, trie :: tries))
      ([], []) blocks
  in
  let head = List.hd chain in
  Printf.printf "chain head : block %d, header %s\n" head.number
    (Hash.short (header_hash head));
  Printf.printf "tx tries   : %d blocks, %d total transactions\n"
    (List.length chain)
    (List.fold_left (fun acc t -> acc + Mpt.cardinal t) 0 tries);

  (* A light client holds only the headers.  To check that a transaction is
     in block 7 it asks a full node for a proof against that tx_root. *)
  let block7 = List.nth blocks 7 in
  let trie7 = List.nth tries (List.length tries - 1 - 7) in
  let some_tx = List.nth block7.Ethereum.txs 42 in
  let proof = Mpt.prove trie7 some_tx.Ethereum.hash_hex in
  let trusted_root = (List.nth (List.rev chain) 7).tx_root in
  Printf.printf "inclusion  : tx %s... in block 7: %b (proof %d bytes)\n"
    (String.sub some_tx.Ethereum.hash_hex 0 12)
    (Mpt.verify_proof ~root:trusted_root proof)
    (Proof.size_bytes proof);

  (* A malicious full node rewrites a stored trie node (say, to redirect a
     payment).  The next proof it produces no longer matches the root the
     light client trusts. *)
  let victim_node = Hash.of_string (List.nth proof.Proof.nodes 1) in
  Store.corrupt store victim_node;
  let accepted =
    (* The corrupted node may not even decode; either way the client rejects. *)
    match Mpt.prove trie7 some_tx.Ethereum.hash_hex with
    | forged -> Mpt.verify_proof ~root:trusted_root forged
    | exception _ -> false
  in
  Printf.printf "tampering  : forged proof accepted: %b (expected false)\n"
    accepted;
  (match Store.get_verified store victim_node with
  | Ok _ -> Printf.printf "tampering  : store scan missed it?!\n"
  | Error (`Tampered h) ->
      Printf.printf "tampering  : store scan flags node %s\n" (Hash.short h));

  (* Absence proofs: prove a transaction is NOT in a block (block 8's trie
     is still pristine). *)
  let trie8 = List.nth tries (List.length tries - 1 - 8) in
  let root8 = (List.nth (List.rev chain) 8).tx_root in
  let ghost = String.make 64 '0' in
  let absent = Mpt.prove trie8 ghost in
  Printf.printf "absence    : claims %s, verifies: %b\n"
    (match absent.Proof.value with None -> "absent" | Some _ -> "present")
    (Mpt.verify_proof ~root:root8 absent)
