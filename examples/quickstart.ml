(* Quickstart: the five-minute tour of the SIRI library.

   Run with:  dune exec examples/quickstart.exe

   Covers: building an index, immutable versions, lookups, diff, merge,
   Merkle proofs, and the deduplication metrics. *)

open Siri_core
module Store = Siri_store.Store
module Pos = Siri_pos.Pos_tree
module Hash = Siri_crypto.Hash

let () =
  (* 1. A content-addressed store and an empty POS-Tree. *)
  let store = Store.create () in
  let cfg = Pos.config ~leaf_target:1024 () in
  let v0 = Pos.empty store cfg in

  (* 2. Bulk-load some records; the result is a new immutable version. *)
  let entries =
    List.init 10_000 (fun i ->
        (Printf.sprintf "user%05d" i, Printf.sprintf "balance=%d" (i * 7)))
  in
  let v1 = Pos.of_entries store cfg entries in
  Printf.printf "v1 root    : %s (%d records, height %d)\n"
    (Hash.short (Pos.root v1)) (Pos.cardinal v1) (Pos.height v1);

  (* 3. Point reads. *)
  Printf.printf "lookup     : user00042 -> %s\n"
    (Option.value ~default:"<absent>" (Pos.lookup v1 "user00042"));

  (* 4. Updates produce a NEW version; v1 is untouched. *)
  let v2 = Pos.insert v1 "user00042" "balance=1000000" in
  Printf.printf "v2 root    : %s\n" (Hash.short (Pos.root v2));
  Printf.printf "v1 still   : user00042 -> %s\n"
    (Option.get (Pos.lookup v1 "user00042"));
  Printf.printf "v2 now     : user00042 -> %s\n"
    (Option.get (Pos.lookup v2 "user00042"));

  (* 5. Diff is proportional to the change, not to the data size. *)
  let diffs = Pos.diff v1 v2 in
  Printf.printf "diff v1 v2 : %d record(s) differ\n" (List.length diffs);
  List.iter
    (fun d -> Format.printf "             %a@." Kv.pp_diff_entry d)
    diffs;

  (* 6. Structural sharing: the two versions share almost every node. *)
  Printf.printf "dedup ratio: %.3f (node sharing %.3f)\n"
    (Dedup.dedup_ratio store [ Pos.root v1; Pos.root v2 ])
    (Dedup.node_sharing_ratio store [ Pos.root v1; Pos.root v2 ]);

  (* 7. Merkle proofs: convince a party who only knows the root digest. *)
  let proof = Pos.prove v2 "user00042" in
  Printf.printf "proof      : %d nodes, %d bytes, verifies: %b\n"
    (List.length proof.Proof.nodes)
    (Proof.size_bytes proof)
    (Pos.verify_proof ~root:(Pos.root v2) proof);
  Printf.printf "tampered   : verifies: %b\n"
    (Pos.verify_proof ~root:(Pos.root v2) (Proof.tamper proof));

  (* 8. Merge two divergent versions (three-way-free record union). *)
  let va = Pos.insert v1 "only-in-a" "1" in
  let vb = Pos.insert v1 "only-in-b" "2" in
  (match Pos.merge va vb ~policy:Kv.Fail_on_conflict with
  | Ok merged ->
      Printf.printf "merge      : %d records (both sides present: %b)\n"
        (Pos.cardinal merged)
        (Pos.lookup merged "only-in-a" = Some "1"
        && Pos.lookup merged "only-in-b" = Some "2")
  | Error conflicts ->
      Printf.printf "merge      : %d conflicts!\n" (List.length conflicts));

  (* 9. Structural invariance: insertion order does not matter. *)
  let shuffled = Rng.shuffle (Rng.create 1) entries in
  let rebuilt =
    List.fold_left (fun t (k, v) -> Pos.insert t k v) (Pos.empty store cfg) shuffled
  in
  Printf.printf "invariant  : shuffled rebuild has same root: %b\n"
    (Hash.equal (Pos.root rebuilt) (Pos.root v1));
  ignore v0
