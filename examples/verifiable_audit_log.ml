(* A verifiable audit log — persistence + authenticated range scans.

   Run with:  dune exec examples/verifiable_audit_log.exe

   An auditable system appends timestamped events to a POS-Tree keyed by
   (timestamp, sequence).  Because keys are time-ordered, "all events of
   day N" is a range scan — and with a range proof, an external auditor who
   only knows the published root digest can verify they received EVERY
   event of that day, unmodified, with nothing hidden.  The store persists
   to disk and survives restarts. *)

open Siri_core
module Store = Siri_store.Store
module Pos = Siri_pos.Pos_tree
module Hash = Siri_crypto.Hash

let cfg = Pos.config ~leaf_target:1024 ()
let store_path = Filename.concat (Filename.get_temp_dir_name ()) "audit-log.siri"

let event_key ~day ~seq = Printf.sprintf "2026-07-%02dT%06d" day seq

let () =
  (* Day 1..5: append events, publishing a root digest per day. *)
  let store = Store.create () in
  let rng = Rng.create 99 in
  let log = ref (Pos.empty store cfg) in
  let published = ref [] in
  for day = 1 to 5 do
    let events =
      List.init 200 (fun seq ->
          Kv.Put
            ( event_key ~day ~seq,
              Printf.sprintf "user=%s action=%s" (Rng.string_alnum rng 6)
                (Rng.pick rng [| "login"; "read"; "write"; "delete" |]) ))
    in
    log := Pos.batch !log events;
    published := (day, Pos.root !log) :: !published
  done;
  let day5_root = Pos.root !log in
  Printf.printf "log        : %d events over 5 days, root %s\n"
    (Pos.cardinal !log) (Hash.short day5_root);

  (* Persist and "restart". *)
  Store.save store store_path;
  let store' = Store.load store_path in
  let log' = Pos.of_root store' cfg day5_root in
  Printf.printf "restart    : reloaded %s (%d events intact)\n"
    (Filename.basename store_path) (Pos.cardinal log');

  (* The auditor asks for day 3.  The operator answers with a range proof;
     the auditor verifies against the digest published at day 5. *)
  let lo = Some (event_key ~day:3 ~seq:0) in
  let hi = Some (event_key ~day:3 ~seq:999_999) in
  let proof = Pos.prove_range log' ~lo ~hi in
  Printf.printf "audit      : day 3 = %d events, proof %s, verifies: %b\n"
    (List.length proof.Range_proof.entries)
    (Siri_benchkit.Table.fmt_bytes (Range_proof.size_bytes proof))
    (Pos.verify_range_proof ~root:day5_root proof);

  (* A dishonest operator who hides one event cannot produce a valid proof. *)
  let censored =
    { proof with Range_proof.entries = List.tl proof.Range_proof.entries }
  in
  Printf.printf "censorship : proof with one event hidden verifies: %b\n"
    (Pos.verify_range_proof ~root:day5_root censored);

  (* Nor can one who back-dates an extra event. *)
  let forged =
    { proof with
      Range_proof.entries =
        (event_key ~day:3 ~seq:1_000, "user=mallory action=admin")
        :: proof.Range_proof.entries }
  in
  Printf.printf "forgery    : proof with an injected event verifies: %b\n"
    (Pos.verify_range_proof ~root:day5_root forged);

  (* Time travel: the digest published on day 2 still answers day-2 audits,
     even though the log has grown since. *)
  let day2_root = List.assoc 2 (List.rev !published) in
  let day2 = Pos.of_root store' cfg day2_root in
  let p2 =
    Pos.prove_range day2
      ~lo:(Some (event_key ~day:2 ~seq:0))
      ~hi:(Some (event_key ~day:2 ~seq:999_999))
  in
  Printf.printf "history    : day-2 audit against day-2 digest: %d events, %b\n"
    (List.length p2.Range_proof.entries)
    (Pos.verify_range_proof ~root:day2_root p2);
  Sys.remove store_path
