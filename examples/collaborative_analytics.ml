(* Collaborative data analytics on the Forkbase-like engine — the paper's
   motivating application #2 (Section 1: data scientists making copies of
   shared datasets for cleansing and curation).

   Run with:  dune exec examples/collaborative_analytics.exe

   Three teams fork the same 20k-record dataset, edit different parts,
   and merge back.  Despite four live branches and many versions, the
   content-addressed store keeps roughly one copy of everything. *)

open Siri_core
module Store = Siri_store.Store
module Engine = Siri_forkbase.Engine
module Pos = Siri_pos.Pos_tree
module Ycsb = Siri_workload.Ycsb
module Table = Siri_benchkit.Table

let () =
  let store = Store.create () in
  let cfg = Pos.config ~leaf_target:1024 () in
  let engine = Engine.create ~empty_index:(Pos.generic (Pos.empty store cfg)) in

  (* The shared dataset. *)
  let y = Ycsb.create ~n:20_000 () in
  let _ =
    Engine.commit engine ~branch:"master" ~message:"import raw dataset"
      (List.map (fun (k, v) -> Kv.Put (k, v)) (Ycsb.dataset y))
  in
  Printf.printf "master     : %d records imported\n" 20_000;

  (* Three teams fork and work independently. *)
  List.iter (fun b -> Engine.fork engine ~from:"master" b)
    [ "cleansing"; "enrichment"; "sampling" ];

  (* Cleansing normalises 1500 records. *)
  let _ =
    Engine.commit engine ~branch:"cleansing" ~message:"normalise units"
      (List.init 1500 (fun i ->
           Kv.Put (Ycsb.key y (i * 13 mod 20_000), "cleansed:" ^ string_of_int i)))
  in
  (* Enrichment adds 1000 derived records. *)
  let _ =
    Engine.commit engine ~branch:"enrichment" ~message:"derive features"
      (List.init 1000 (fun i ->
           Kv.Put (Printf.sprintf "derived-%05d" i, Printf.sprintf "feature-%d" i)))
  in
  (* Sampling deletes 90% of the data to build a small dev set. *)
  let _ =
    Engine.commit engine ~branch:"sampling" ~message:"keep 10% sample"
      (List.filteri (fun i _ -> i mod 10 <> 0) (Ycsb.dataset y)
      |> List.map (fun (k, _) -> Kv.Del k))
  in

  (* Storage report: four branches, one store. *)
  let st = Store.stats store in
  Table.print ~title:"storage after branching"
    ~headers:[ "metric"; "value" ]
    [ [ "branches"; String.concat ", " (Engine.branches engine) ];
      [ "total versions"; string_of_int (Engine.total_versions engine) ];
      [ "distinct nodes"; string_of_int st.Store.unique_nodes ];
      [ "stored bytes"; Table.fmt_bytes st.Store.stored_bytes ];
      [ "dedup ratio across heads";
        Printf.sprintf "%.3f" (Engine.dedup_ratio engine) ] ];

  (* What changed between master and cleansing?  Proportional to the edit. *)
  let d = Engine.diff_branches engine "master" "cleansing" in
  Printf.printf "\ndiff       : master vs cleansing = %d records\n"
    (List.length d);

  (* Merge both content branches back into master. *)
  (match Engine.merge_branches engine ~into:"master" ~from:"cleansing"
           ~policy:Kv.Prefer_right with
  | Ok c -> Printf.printf "merge      : cleansing -> master (v%d)\n" c.Engine.version
  | Error _ -> assert false);
  (match Engine.merge_branches engine ~into:"master" ~from:"enrichment"
           ~policy:Kv.Prefer_right with
  | Ok c -> Printf.printf "merge      : enrichment -> master (v%d)\n" c.Engine.version
  | Error _ -> assert false);
  let master = Engine.index engine "master" in
  Printf.printf "master now : %d records (cleansed + derived)\n"
    (master.Generic.cardinal ());

  (* Any historical version remains reachable: audit the pre-merge state. *)
  let second_commit =
    List.nth (List.rev (Engine.history engine "master")) 1
  in
  let audit = Engine.checkout engine second_commit.Engine.id in
  Printf.printf "audit      : version %d had %d records, key0 untouched: %b\n"
    second_commit.Engine.version
    (audit.Generic.cardinal ())
    (audit.Generic.lookup (Ycsb.key y 0) = Some (Ycsb.value y 0))
