(* A wiki revision store — the Figure 1 scenario: many versions of a
   mutating dataset, stored raw vs deduplicated, across all four indexes.

   Run with:  dune exec examples/versioned_wiki.exe

   Loads a synthetic Wikipedia-abstract dataset, applies 30 versioned
   edit batches to each index kind, and reports how index-level
   deduplication compares with storing every version separately. *)

open Siri_core
module Store = Siri_store.Store
module Mpt = Siri_mpt.Mpt
module Mbt = Siri_mbt.Mbt
module Pos = Siri_pos.Pos_tree
module Mvbt = Siri_mvbt.Mvbt
module Wiki = Siri_workload.Wiki
module Table = Siri_benchkit.Table

let pages = 5_000
let versions = 30
let edits_per_version = 150

let run_index name (mk : Store.t -> Generic.t) =
  let store = Store.create () in
  let wiki = Wiki.create ~pages () in
  let rng = Rng.create 7 in
  let v0 = Generic.of_entries (mk store) (Wiki.dataset wiki) in
  let stream = Wiki.version_stream wiki ~rng ~versions ~edits_per_version in
  let heads =
    List.rev
      (List.fold_left
         (fun heads ops ->
           match heads with
           | latest :: _ -> latest.Generic.batch ops :: heads
           | [] -> assert false)
         [ v0 ] stream)
  in
  let roots = List.map (fun h -> h.Generic.root) heads in
  let raw = Dedup.sum_bytes store roots in
  let deduplicated = Dedup.union_bytes store roots in
  (name, raw, deduplicated, Dedup.dedup_ratio store roots)

let () =
  Printf.printf
    "Storing %d wiki pages over %d versions (%d edits each), per index:\n"
    pages (versions + 1) edits_per_version;
  let results =
    [ run_index "mpt" (fun s -> Mpt.generic (Mpt.empty s));
      run_index "mbt"
        (fun s -> Mbt.generic (Mbt.empty s (Mbt.config ~capacity:1024 ~fanout:4 ())));
      run_index "pos-tree"
        (fun s -> Pos.generic (Pos.empty s (Pos.config ~leaf_target:1024 ())));
      run_index "mvmb+-tree"
        (fun s -> Mvbt.generic (Mvbt.empty s (Mvbt.config ()))) ]
  in
  Table.print ~title:"raw vs deduplicated storage (all versions retained)"
    ~headers:[ "index"; "raw (all versions)"; "deduplicated"; "saved"; "eta" ]
    (List.map
       (fun (name, raw, dedup, eta) ->
         [ name;
           Table.fmt_bytes raw;
           Table.fmt_bytes dedup;
           Printf.sprintf "%.1fx" (Float.of_int raw /. Float.of_int dedup);
           Printf.sprintf "%.3f" eta ])
       results);
  print_newline ();
  Printf.printf
    "Every version stays queryable: this is what makes branching, audit and\n\
     time-travel cheap — the Figure 1 effect at index level.\n"
